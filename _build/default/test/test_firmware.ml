module Cpu = Mavr_avr.Cpu
module Io = Mavr_avr.Device.Io
module Image = Mavr_obj.Image
module F = Mavr_firmware
module Frame = Mavr_mavlink.Frame

let test_profiles_table1 () =
  (* Table I: number of functions per application. *)
  List.iter
    (fun ((p : F.Profile.t), expected) ->
      let b = F.Build.build p F.Profile.mavr in
      Alcotest.(check int) p.name expected (F.Build.function_count b))
    [ (F.Profile.arduplane, 917); (F.Profile.arducopter, 1030); (F.Profile.ardurover, 800) ]

let test_stock_sizes_table3 () =
  (* Table III: stock code sizes calibrate to the paper's bytes. *)
  List.iter
    (fun ((p : F.Profile.t), expected) ->
      let b = F.Build.build p F.Profile.stock in
      Alcotest.(check int) p.name expected (F.Build.code_size b))
    [ (F.Profile.arduplane, 221608); (F.Profile.arducopter, 244532); (F.Profile.ardurover, 177870) ]

let test_mavr_size_delta_small () =
  let stock, mavr = F.Build.build_pair F.Profile.ardurover in
  let delta = abs (F.Build.code_size mavr - F.Build.code_size stock) in
  (* Paper: the toolchain change moves code size by well under 1%. *)
  Alcotest.(check bool) "delta under 0.5%" true
    (float_of_int delta /. float_of_int (F.Build.code_size stock) < 0.005)

let test_deterministic_builds () =
  let a = F.Build.build Helpers.tiny_profile F.Profile.mavr in
  let b = F.Build.build Helpers.tiny_profile F.Profile.mavr in
  Alcotest.(check bool) "same bytes" true (a.image.Image.code = b.image.Image.code)

let test_boot_feeds_watchdog () =
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot b.image in
  Alcotest.(check bool) "watchdog fed" true (Cpu.watchdog_feeds cpu > 10)

let test_telemetry_stream_valid () =
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot b.image in
  let r, frames, stats = Helpers.telemetry cpu ~cycles:400_000 in
  Alcotest.(check string) "still running" "running" (Helpers.run_result_to_string r);
  Alcotest.(check bool) "frames streamed" true (List.length frames > 5);
  Alcotest.(check int) "no CRC errors" 0 stats.crc_errors;
  Alcotest.(check int) "no dropped bytes" 0 stats.bytes_dropped;
  Alcotest.(check bool) "heartbeats present" true
    (List.exists (fun (f : Frame.t) -> f.msgid = 0) frames);
  Alcotest.(check bool) "raw_imu present" true
    (List.exists (fun (f : Frame.t) -> f.msgid = 27) frames)

let test_gyro_flows_to_telemetry () =
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot ~gyro:0x0BAD b.image in
  let _, frames, _ = Helpers.telemetry cpu ~cycles:400_000 in
  match List.find_opt (fun (f : Frame.t) -> f.msgid = 27) frames with
  | Some f -> (
      match Mavr_mavlink.Messages.Raw_imu.decode f.payload with
      | Ok imu -> Alcotest.(check int) "xgyro" 0x0BAD (imu.xgyro land 0xFFFF)
      | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "no RAW_IMU frame"

let test_param_set_roundtrip () =
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot b.image in
  let payload = "\xDE\xAD\xBF" ^ String.make 13 '\x00' in
  Cpu.uart_send cpu (Frame.encode { Frame.seq = 0; sysid = 255; compid = 0; msgid = 23; payload });
  ignore (Cpu.run cpu ~max_cycles:400_000);
  let pa = F.Layout.param_area in
  Alcotest.(check int) "byte 1" 0xDE (Cpu.data_peek cpu (pa + 1));
  Alcotest.(check int) "byte 2" 0xAD (Cpu.data_peek cpu (pa + 2));
  Alcotest.(check int) "byte 3" 0xBF (Cpu.data_peek cpu (pa + 3))

let test_command_long_bounded_copy () =
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot b.image in
  let payload = String.init 255 (fun i -> Char.chr (i land 0xFF)) in
  Cpu.uart_send cpu (Frame.encode { Frame.seq = 0; sysid = 255; compid = 0; msgid = 76; payload });
  let r = Cpu.run cpu ~max_cycles:600_000 in
  Alcotest.(check string) "no crash from 255-byte command" "running"
    (Helpers.run_result_to_string r);
  (* only 16 bytes copied *)
  Alcotest.(check int) "cmd[0]" 0 (Cpu.data_peek cpu F.Layout.cmd_area);
  Alcotest.(check int) "cmd[15]" 15 (Cpu.data_peek cpu (F.Layout.cmd_area + 15))

let test_bad_crc_frame_rejected () =
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot b.image in
  let wire = Frame.encode { Frame.seq = 0; sysid = 255; compid = 0; msgid = 23;
                            payload = "\x99\x99\x99" } in
  let bad = Bytes.of_string wire in
  Bytes.set bad (Bytes.length bad - 1) '\x00';
  Cpu.uart_send cpu (Bytes.to_string bad);
  ignore (Cpu.run cpu ~max_cycles:400_000);
  Alcotest.(check int) "param area untouched" 0 (Cpu.data_peek cpu (F.Layout.param_area + 1))

let test_heartbeat_uplink_recorded () =
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot b.image in
  Alcotest.(check int) "no beat yet" 0 (Cpu.data_peek cpu F.Layout.gcs_beat);
  let hb = Mavr_mavlink.Messages.Heartbeat.encode
      { typ = 6; autopilot = 8; base_mode = 0; custom_mode = 0; system_status = 4 } in
  Cpu.uart_send cpu (Frame.encode { Frame.seq = 0; sysid = 255; compid = 0; msgid = 0; payload = hb });
  ignore (Cpu.run cpu ~max_cycles:300_000);
  Alcotest.(check int) "gcs heartbeat recorded" 1 (Cpu.data_peek cpu F.Layout.gcs_beat)

let test_gyro_cfg_offset_applied () =
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot ~gyro:0x0100 b.image in
  Cpu.data_poke cpu F.Layout.gyro_cfg 0x10;
  Cpu.data_poke cpu (F.Layout.gyro_cfg + 1) 0x20;
  ignore (Cpu.run cpu ~max_cycles:100_000);
  let v = Cpu.data_peek cpu F.Layout.gyro_val lor (Cpu.data_peek cpu (F.Layout.gyro_val + 1) lsl 8) in
  Alcotest.(check int) "raw + offset" ((0x0100 + 0x2010) land 0xFFFF) v

let test_vulnerable_vs_patched () =
  (* The patched toolchain clamps the copy: a 200-byte PARAM_SET must not
     take over. *)
  let vuln = Helpers.build_mavr () in
  let patched = Helpers.build_patched () in
  let attack_payload = String.make 200 '\xF4' in
  let frame = Frame.encode { Frame.seq = 0; sysid = 255; compid = 0; msgid = 23; payload = attack_payload } in
  let crash image =
    let cpu = Helpers.boot image in
    Cpu.uart_send cpu frame;
    match Cpu.run cpu ~max_cycles:1_000_000 with `Halted _ -> true | `Budget_exhausted -> false
  in
  Alcotest.(check bool) "vulnerable build crashes" true (crash vuln.image);
  Alcotest.(check bool) "patched build survives" false (crash patched.image)

let test_vtable_dispatch_runs () =
  (* The vtable entries point at filler functions; dispatch must not
     crash over a long run (exercises icall through RAM pointers). *)
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot b.image in
  let r = Cpu.run cpu ~max_cycles:1_000_000 in
  Alcotest.(check string) "long run stable" "running" (Helpers.run_result_to_string r)

let test_data_init_copied () =
  let b = Helpers.build_mavr () in
  let cpu = Helpers.boot b.image in
  (* The RAM vtable copy must match the flash initializer. *)
  let flash_off = Mavr_asm.Assembler.label_value b.asm "__data_init" in
  let n = 2 * F.Layout.vtable_entries in
  let flash = String.sub b.image.Image.code flash_off n in
  let ram = Cpu.stack_slice cpu ~pos:F.Layout.vtable_vma ~len:n in
  Alcotest.(check string) "vtable copied to RAM" flash ram

let test_runtime_function_count () =
  Alcotest.(check int) "runtime kernel functions" (List.length F.Runtime.function_names)
    F.Build.runtime_function_count

let () =
  Alcotest.run "firmware"
    [
      ( "profiles",
        [
          Alcotest.test_case "Table I function counts" `Slow test_profiles_table1;
          Alcotest.test_case "Table III stock sizes" `Slow test_stock_sizes_table3;
          Alcotest.test_case "toolchain delta small" `Slow test_mavr_size_delta_small;
          Alcotest.test_case "builds deterministic" `Quick test_deterministic_builds;
          Alcotest.test_case "runtime function count" `Quick test_runtime_function_count;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "boot feeds watchdog" `Quick test_boot_feeds_watchdog;
          Alcotest.test_case "telemetry stream valid" `Quick test_telemetry_stream_valid;
          Alcotest.test_case "gyro flows to telemetry" `Quick test_gyro_flows_to_telemetry;
          Alcotest.test_case "PARAM_SET roundtrip" `Quick test_param_set_roundtrip;
          Alcotest.test_case "COMMAND_LONG bounded" `Quick test_command_long_bounded_copy;
          Alcotest.test_case "bad CRC rejected" `Quick test_bad_crc_frame_rejected;
          Alcotest.test_case "uplink heartbeat" `Quick test_heartbeat_uplink_recorded;
          Alcotest.test_case "gyro config offset" `Quick test_gyro_cfg_offset_applied;
          Alcotest.test_case "vulnerable vs patched" `Quick test_vulnerable_vs_patched;
          Alcotest.test_case "vtable dispatch stable" `Quick test_vtable_dispatch_runs;
          Alcotest.test_case "data initializer copied" `Quick test_data_init_copied;
        ] );
    ]
