type stack_snapshot = { label : string; window_start : int; bytes : string; sp_at : int }

let snapshot cpu ~label ~window_start ~window_len =
  {
    label;
    window_start;
    bytes = Cpu.stack_slice cpu ~pos:window_start ~len:window_len;
    sp_at = Cpu.sp cpu;
  }

let pp_snapshot fmt s =
  Format.fprintf fmt "%s (SP=0x%04x)@." s.label s.sp_at;
  let n = String.length s.bytes in
  let row = 8 in
  let rec go i =
    if i < n then begin
      Format.fprintf fmt "0x%06X:" (s.window_start + i);
      for j = i to min (i + row - 1) (n - 1) do
        Format.fprintf fmt " 0x%02X" (Char.code s.bytes.[j])
      done;
      Format.fprintf fmt "@.";
      go (i + row)
    end
  in
  go 0

type event = { byte_addr : int; insn : Isa.t; sp_before : int; cycle : int }

type recorder = { limit : int; q : event Queue.t }

let recorder ~limit = { limit; q = Queue.create () }

let step_traced r cpu =
  (match Cpu.halted cpu with
  | Some _ -> ()
  | None ->
      let byte_addr = Cpu.pc_byte_addr cpu in
      let mem = Cpu.mem cpu in
      let w1 = Memory.flash_word mem (Cpu.pc cpu) in
      let w2 = Memory.flash_word mem (Cpu.pc cpu + 1) in
      let insn, _ = Decode.decode w1 w2 in
      Queue.push { byte_addr; insn; sp_before = Cpu.sp cpu; cycle = Cpu.cycles cpu } r.q;
      while Queue.length r.q > r.limit do
        ignore (Queue.pop r.q)
      done);
  Cpu.step cpu

let events r = List.of_seq (Queue.to_seq r.q)

let pp_event fmt e =
  Format.fprintf fmt "[%8d] %6x:\t%a\t(SP=0x%04x)" e.cycle e.byte_addr Isa.pp e.insn e.sp_before
