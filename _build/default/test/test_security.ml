module Security = Mavr_core.Security
module Nat = Mavr_bignum.Nat

let test_factorial_int () =
  Alcotest.(check int) "0!" 1 (Security.factorial_int 0);
  Alcotest.(check int) "6!" 720 (Security.factorial_int 6);
  Alcotest.check_raises "21! overflows"
    (Invalid_argument "Security.factorial_int: out of range") (fun () ->
      ignore (Security.factorial_int 21))

let test_static_expectation () =
  (* E[X] = (N+1)/2 with N = n!. *)
  Alcotest.(check int) "n=3: (6+1)/2 = 3" 3 (Nat.to_int (Security.expected_attempts_static ~n:3));
  Alcotest.(check int) "n=5: (120+1)/2 = 60" 60
    (Nat.to_int (Security.expected_attempts_static ~n:5));
  (* For large n the quantity is astronomically large but exact. *)
  Alcotest.(check int) "800 symbols: 1977-digit effort" 1977
    (Nat.digits (Security.expected_attempts_static ~n:800))

let test_rerandomizing_expectation () =
  Alcotest.(check string) "n=5 -> 5! = 120" "120"
    (Nat.to_string (Security.expected_attempts_rerandomizing ~n:5));
  (* MAVR's re-randomization doubles the expected effort vs static:
     n! vs (n!+1)/2 (§V-D). *)
  let static = Security.expected_attempts_static ~n:10 in
  let rerand = Security.expected_attempts_rerandomizing ~n:10 in
  Alcotest.(check bool) "about double" true
    (Nat.compare rerand (Nat.mul_int static 2) <= 0
    && Nat.compare rerand static > 0)

let test_entropy_bits () =
  let close msg expected actual tol =
    if Float.abs (expected -. actual) > tol then
      Alcotest.failf "%s: expected %.1f got %.1f" msg expected actual
  in
  (* §VIII-B: Ardurover's 800 symbols give ~6567 bits. *)
  close "800 symbols" 6567.0 (Security.entropy_bits ~n:800) 2.0;
  close "917 symbols (Arduplane)" 7707.0 (Security.entropy_bits ~n:917) 5.0;
  close "1030 symbols (Arducopter)" 8829.0 (Security.entropy_bits ~n:1030) 5.0;
  close "small case exact" (log (float_of_int 720) /. log 2.0) (Security.entropy_bits ~n:6) 1e-6

let test_success_probability_uniform () =
  (* P(j) = 1/N for every attempt index (the paper's telescoping). *)
  let p1 = Security.success_probability_at ~n:5 ~j:1 in
  let p60 = Security.success_probability_at ~n:5 ~j:60 in
  Alcotest.(check (float 1e-12)) "uniform over attempts" p1 p60;
  Alcotest.(check (float 1e-9)) "equals 1/120" (1.0 /. 120.0) p1

let test_monte_carlo_static () =
  (* n=4: N=24, E = 12.5. *)
  let mean = Security.monte_carlo_static ~n:4 ~trials:20_000 ~seed:7 in
  Alcotest.(check bool) "static MC near 12.5" true (Float.abs (mean -. 12.5) < 0.5)

let test_monte_carlo_rerandomizing () =
  (* n=4: E = 24. *)
  let mean = Security.monte_carlo_rerandomizing ~n:4 ~trials:20_000 ~seed:7 in
  Alcotest.(check bool) "re-randomizing MC near 24" true (Float.abs (mean -. 24.0) < 1.5)

let test_monte_carlo_ordering () =
  (* The defense property: re-randomizing costs the attacker ~2x. *)
  let s = Security.monte_carlo_static ~n:5 ~trials:10_000 ~seed:3 in
  let r = Security.monte_carlo_rerandomizing ~n:5 ~trials:10_000 ~seed:3 in
  Alcotest.(check bool) "rerandomizing harder" true (r > s *. 1.5)

(* ---- §V-C lifetime / frequency trade-off ---- *)

let test_lifetime_basics () =
  let open Mavr_core.Lifetime in
  let every n = { randomize_every_boots = n } in
  Alcotest.(check (float 1e-9)) "every boot, no attacks" 1.0
    (reflashes_per_boot (every 1) ~attack_rate_per_boot:0.0);
  Alcotest.(check (float 1e-9)) "every 10 boots" 0.1
    (reflashes_per_boot (every 10) ~attack_rate_per_boot:0.0);
  Alcotest.(check (float 1e-6)) "wearout at k=1" 10_000.0
    (boots_until_wearout (every 1) ~endurance:10_000 ~attack_rate_per_boot:0.0);
  Alcotest.(check int) "staleness window" 20 (layout_exposure_boots (every 20));
  Alcotest.check_raises "k=0 rejected"
    (Invalid_argument "Lifetime: randomize_every_boots must be >= 1") (fun () ->
      ignore (reflashes_per_boot (every 0) ~attack_rate_per_boot:0.0))

let test_lifetime_attack_pressure () =
  let open Mavr_core.Lifetime in
  let policy = { randomize_every_boots = 20 } in
  let quiet = boots_until_wearout policy ~endurance:10_000 ~attack_rate_per_boot:0.0 in
  let noisy = boots_until_wearout policy ~endurance:10_000 ~attack_rate_per_boot:0.1 in
  Alcotest.(check bool) "attacks consume endurance" true (noisy < quiet);
  (* With heavy attack pressure the schedule k no longer matters much. *)
  let k1 = boots_until_wearout { randomize_every_boots = 1 } ~endurance:10_000 ~attack_rate_per_boot:5.0 in
  let k100 = boots_until_wearout { randomize_every_boots = 100 } ~endurance:10_000 ~attack_rate_per_boot:5.0 in
  Alcotest.(check bool) "attack-dominated regime" true (k100 /. k1 < 1.25)

let prop_lifetime_monotone_in_k =
  QCheck.Test.make ~name:"lifetime monotone in k (fixed attack rate)" ~count:50
    QCheck.(int_range 1 500)
    (fun k ->
      let open Mavr_core.Lifetime in
      boots_until_wearout { randomize_every_boots = k + 1 } ~endurance:10_000
        ~attack_rate_per_boot:0.01
      >= boots_until_wearout { randomize_every_boots = k } ~endurance:10_000
           ~attack_rate_per_boot:0.01)

let prop_static_expectation_closed_form =
  QCheck.Test.make ~name:"(n!+1)/2 closed form" ~count:15
    QCheck.(int_range 1 15)
    (fun n ->
      let nf = Security.factorial_int n in
      Nat.to_int (Security.expected_attempts_static ~n) = (nf + 1) / 2)

let prop_entropy_monotone =
  QCheck.Test.make ~name:"entropy monotone in n" ~count:30
    QCheck.(int_range 2 1000)
    (fun n -> Security.entropy_bits ~n:(n + 1) > Security.entropy_bits ~n)

let () =
  Alcotest.run "security"
    [
      ( "closed-forms",
        [
          Alcotest.test_case "factorial_int" `Quick test_factorial_int;
          Alcotest.test_case "static expectation" `Quick test_static_expectation;
          Alcotest.test_case "re-randomizing expectation" `Quick test_rerandomizing_expectation;
          Alcotest.test_case "entropy bits" `Quick test_entropy_bits;
          Alcotest.test_case "uniform success probability" `Quick test_success_probability_uniform;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "basics" `Quick test_lifetime_basics;
          Alcotest.test_case "attack pressure" `Quick test_lifetime_attack_pressure;
          Helpers.qtest prop_lifetime_monotone_in_k;
        ] );
      ( "monte-carlo",
        [
          Alcotest.test_case "static" `Quick test_monte_carlo_static;
          Alcotest.test_case "re-randomizing" `Quick test_monte_carlo_rerandomizing;
          Alcotest.test_case "ordering" `Quick test_monte_carlo_ordering;
        ] );
      ( "properties",
        List.map Helpers.qtest [ prop_static_expectation_closed_form; prop_entropy_monotone ] );
    ]
