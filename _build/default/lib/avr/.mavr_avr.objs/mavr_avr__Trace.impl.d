lib/avr/trace.ml: Char Cpu Decode Format Isa List Memory Queue String
