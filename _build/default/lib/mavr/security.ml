module Nat = Mavr_bignum.Nat
module Rng = Mavr_prng.Splitmix

let expected_attempts_static ~n =
  let q, _ = Nat.divmod_int (Nat.add (Nat.factorial n) Nat.one) 2 in
  q

let expected_attempts_rerandomizing ~n = Nat.factorial n

let entropy_bits ~n = Nat.log2_factorial n

let entropy_bits_with_padding ~n ~slack_bytes =
  (* log2 C(slack+n, n) computed stably as sum log2 ((slack+i)/i). *)
  let log2 x = log x /. log 2.0 in
  let rec gaps i acc =
    if i > n then acc
    else gaps (i + 1) (acc +. log2 (float_of_int (slack_bytes + i) /. float_of_int i))
  in
  entropy_bits ~n +. gaps 1 0.0

let success_probability_at ~n ~j =
  let nf = Nat.log2_factorial n in
  if j < 1 then 0.0 else 2.0 ** (-.nf)

let factorial_int n =
  if n < 0 || n > 20 then invalid_arg "Security.factorial_int: out of range";
  let rec go i acc = if i > n then acc else go (i + 1) (acc * i) in
  go 2 1

(* The attacker guesses permutations; a guess is "correct" when it equals
   the defender's layout.  Static: the layout is fixed and the attacker
   samples without replacement.  Re-randomizing: the defender redraws
   after every failed attempt, so prior guesses teach nothing. *)

let monte_carlo_static ~n ~trials ~seed =
  let nf = factorial_int n in
  let rng = Rng.create ~seed in
  let total = ref 0 in
  for _ = 1 to trials do
    (* Sampling without replacement over nf layouts = success position
       uniform in 1..nf. *)
    total := !total + 1 + Rng.int rng nf
  done;
  float_of_int !total /. float_of_int trials

let monte_carlo_rerandomizing ~n ~trials ~seed =
  let nf = factorial_int n in
  let rng = Rng.create ~seed in
  let total = ref 0 in
  for _ = 1 to trials do
    let attempts = ref 1 in
    while Rng.int rng nf <> 0 do
      incr attempts
    done;
    total := !total + !attempts
  done;
  float_of_int !total /. float_of_int trials
