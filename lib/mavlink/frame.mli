(** MAVLink v1 frames (Fig. 2 of the paper).

    Wire layout: start magic 0xFE, payload length, packet sequence number,
    sender system id, sender component id, message id, payload (up to 255
    bytes), CRC-16/MCRF4XX low byte, high byte.  The checksum covers every
    byte after the magic plus the message's CRC_EXTRA byte. *)

val magic : int

type t = { seq : int; sysid : int; compid : int; msgid : int; payload : string }

(** Minimum on-wire frame size (the paper's "minimum packet length of 17
    bytes" counts the 9-byte minimum payload; an empty payload gives 8). *)
val header_len : int

val crc_len : int

(** [encode t] renders the frame.  [crc_extra] defaults to the catalog
    value for [t.msgid].
    @raise Invalid_argument when the payload exceeds 255 bytes or ids are
    out of byte range. *)
val encode : ?crc_extra:int -> t -> string

(** [encode_raw ~declared_len t] renders a frame whose {e length field} is
    [declared_len] regardless of the actual payload size — the malformed
    packet a malicious ground station sends once the receiver's length
    check is disabled (§IV-B).  The CRC is computed over the bytes
    actually sent so the firmware accepts it. *)
val encode_raw : ?crc_extra:int -> declared_len:int -> t -> string

type error =
  | Bad_magic
  | Bad_crc of { got : int; expected : int }
  | Truncated

val pp_error : Format.formatter -> error -> unit

(** [decode ?crc_extra ?pos s] parses one complete frame starting at
    offset [pos] (default 0) of [s]; returns the frame and the number of
    bytes consumed from [pos].  Taking an offset lets streaming callers
    scan a buffer without copying a fresh suffix per attempt.
    @raise Invalid_argument when [pos] is outside [s]. *)
val decode : ?crc_extra_of:(int -> int) -> ?pos:int -> string -> (t * int, error) result

val wire_length : t -> int
