test/test_asm.ml: Alcotest Char List Mavr_asm Mavr_avr String
