module Json = Mavr_telemetry.Json

type handler = Json.t -> progress:(string -> unit) -> (Json.t, string) result

let send_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let send_obj oc fields = send_line oc (Json.to_string (Json.Obj fields))

let handle_channel handler ic oc =
  match input_line ic with
  | exception End_of_file ->
      send_obj oc [ ("kind", Json.String "error"); ("error", Json.String "empty request") ]
  | line -> (
      match Json.of_string line with
      | Error e ->
          send_obj oc
            [ ("kind", Json.String "error"); ("error", Json.String ("bad request: " ^ e)) ]
      | Ok req -> (
          (* Heartbeat lines pass through verbatim (they already carry
             seq/reason/done/total); only the terminal line is tagged
             with a "kind". *)
          match handler req ~progress:(send_line oc) with
          | Ok result -> send_obj oc [ ("kind", Json.String "result"); ("result", result) ]
          | Error e -> send_obj oc [ ("kind", Json.String "error"); ("error", Json.String e) ]
          | exception e ->
              send_obj oc
                [
                  ("kind", Json.String "error");
                  ("error", Json.String ("handler raised: " ^ Printexc.to_string e));
                ]))

let serve ~socket ?max_requests handler =
  (* A dead client mid-stream must not kill the server with SIGPIPE;
     the write error surfaces as Sys_error on the channel instead. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          try Unix.unlink socket with Unix.Unix_error _ -> ())
        (fun () ->
          match
            Unix.bind fd (Unix.ADDR_UNIX socket);
            Unix.listen fd 8
          with
          | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
          | () ->
              (* Sequential accept loop: one campaign at a time owns the
                 pool; queued clients wait in the listen backlog. *)
              let rec loop served =
                match max_requests with
                | Some m when served >= m -> Ok served
                | _ -> (
                    match Unix.accept fd with
                    (* Transient accept failures must not tear the server
                       down: EINTR is any signal landing mid-accept (a
                       worker being supervised gets plenty), ECONNABORTED
                       is a client giving up while queued.  Retry; only
                       real socket errors (EBADF, EMFILE, ...) are fatal. *)
                    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
                        loop served
                    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
                    | client, _ ->
                        let ic = Unix.in_channel_of_descr client in
                        let oc = Unix.out_channel_of_descr client in
                        (try handle_channel handler ic oc with Sys_error _ -> ());
                        (* ic and oc share the descriptor: closing oc
                           flushes and closes it; closing ic then hits
                           EBADF, which noerr swallows. *)
                        close_out_noerr oc;
                        close_in_noerr ic;
                        loop (served + 1))
              in
              loop 0)

let serve_stdio handler = handle_channel handler stdin stdout
