(** Control-flow patching after a block shuffle (§V-B3, §VI-B3).

    When function blocks move, absolute [call]/[jmp] targets and the
    function pointers stored in the data section become stale.  This
    module rewrites them for a given {!Shuffle.t}:

    - [call]/[jmp] targets inside the text section are remapped; targets
      that do not land exactly on a symbol (switch-table trampolines,
      shared-epilogue entries) are resolved by binary search for the
      containing function and preserved as block-internal offsets;
    - relative transfers ([rcall]/[rjmp]/conditional branches) are legal
      only within their own block (position-independent under the move);
      a cross-block relative transfer means the image was linked with
      relaxation enabled and cannot be randomized — exactly why the MAVR
      toolchain requires [--no-relax] (§VI-B1);
    - stored function pointers (vtables, call-routing arrays) at the
      preprocessed [funptr_locs] are remapped as 16-bit word addresses.

    Patching streams over the image the way the master processor streams
    from the external flash chip: function by function, never holding the
    whole binary in RAM. *)

exception Unpatchable of string

(** [apply image shuffle] is the randomized image (new code and symbol
    table; [funptr_locs] keep their flash offsets with updated contents).
    @raise Unpatchable on cross-block relative transfers or targets that
    cannot be attributed to a function. *)
val apply : Mavr_obj.Image.t -> Shuffle.t -> Mavr_obj.Image.t

(** [check_randomizable image] runs the same analysis without producing
    output; [Error reason] when the image cannot be safely randomized. *)
val check_randomizable : Mavr_obj.Image.t -> (unit, string) result
