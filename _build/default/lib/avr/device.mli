(** Device profiles for the AVR microcontrollers used by MAVR.

    The paper's system uses two parts: the ATmega2560 {e application
    processor} on the APM 2.5 board and the ATmega1284P {e master
    processor} added by the MAVR hardware design (§V-A, §VI-A).  A profile
    captures the memory geometry (Fig. 1) and the I/O locations the
    emulator, firmware and attacks depend on. *)

type t = {
  name : string;
  flash_bytes : int;       (** internal program flash size *)
  sram_bytes : int;        (** internal SRAM, excluding register/I/O file *)
  eeprom_bytes : int;
  pc_bytes : int;          (** bytes of PC pushed by [call]: 3 on the 2560
                               (22-bit PC), 2 on parts up to 128 KB *)
  io_base : int;           (** data-space address of I/O register 0 *)
  sram_base : int;         (** data-space address of first SRAM byte *)
  flash_page_bytes : int;  (** self-programming page size *)
  flash_endurance : int;   (** guaranteed program/erase cycles (10,000) *)
  unit_price_usd : float;  (** prototype-batch unit price (§V-A4) *)
}

val atmega2560 : t
val atmega1284p : t

(** Data-space end (exclusive): [sram_base + sram_bytes]. *)
val data_end : t -> int

(** I/O register numbers (for [in]/[out], i.e. offsets from [io_base]). *)
module Io : sig
  (** Stack pointer low byte, 0x3D — the [stk_move] gadget's target. *)
  val spl : int

  (** Stack pointer high byte, 0x3E. *)
  val sph : int

  (** Status register, 0x3F. *)
  val sreg : int

  (** Pseudo-port written by firmware each main-loop iteration; the MAVR
      master listens to it to detect failed attacks (§VI-A). *)
  val wdt_feed : int

  (** UART data register (simplified single-UART model). *)
  val udr : int

  (** UART status: bit 7 = RX complete, bit 5 = TX ready. *)
  val ucsra : int

  (** Memory-mapped gyroscope sensor value, low byte. *)
  val gyro_lo : int

  val gyro_hi : int

  (** Memory-mapped accelerometer X-axis value. *)
  val accel_lo : int

  val accel_hi : int

  (** EEPROM control register: bit 0 = EERE (read enable), bit 1 = EEPE
      (write enable).  Together with {!eedr}/{!eearl}/{!eearh} this is the
      access path to the third memory of Fig. 1. *)
  val eecr : int

  val eedr : int
  val eearl : int
  val eearh : int

  (** RAMPZ: the flash high byte used by [elpm] on >64 KB parts. *)
  val rampz : int

  (** Timer control: bit 0 enables the periodic compare interrupt. *)
  val tccr : int

  (** Timer compare value: the interrupt period is [(ocr + 1) * 64]
      cycles. *)
  val ocr : int
end

(** Interrupt vector numbers (each vector slot is one [jmp], 4 bytes). *)
module Vector : sig
  val reset : int
  val timer_compare : int
  val count : int  (** vector-table entries on the ATmega2560 *)

  (** [byte_addr n] — flash byte address of vector [n]'s jump. *)
  val byte_addr : int -> int
end

(** M95M02-class external SPI flash used by the MAVR master to store the
    preprocessed application binary (§V-A1). *)
module External_flash : sig
  type t

  (** [create ~bytes] makes an empty external flash of the given size;
      the paper sizes it to match the application processor's flash. *)
  val create : bytes:int -> t

  val size : t -> int

  (** [program t data] replaces the chip contents.
      @raise Invalid_argument if [data] exceeds the chip size. *)
  val program : t -> string -> unit

  (** [read t ~pos ~len] random-access read (the streaming property the
      randomizer relies on, §VI-B3). *)
  val read : t -> pos:int -> len:int -> string

  val read_byte : t -> int -> int

  (** Number of bytes currently programmed. *)
  val content_length : t -> int

  val unit_price_usd : float
end
