(** Monte Carlo attack/defense campaign over closed-loop scenarios.

    The paper's effectiveness argument (§VII-A) is a grid: each of the
    three §IV ROP attacks, fired at each defense posture, across many
    randomized trials.  This module runs that grid on the campaign
    engine — one {!Scenario} flight per (defense × attack × trial) task,
    takeover/detection/time-to-detect statistics aggregated per cell —
    with output bit-identical for any job count.

    Defense postures:
    - [Undefended] — bare APM running the unprotected binary;
    - [Software_only] — §VIII-A: the binary is diversified once (a
      per-trial random layout) but no master watches;
    - [Mavr_defense] — the full master: randomize at boot, watchdog
      detection, re-randomize + reflash on failure.

    Each trial owns a private telemetry registry; they are merged
    ({!Mavr_telemetry.Metrics.merge}, commutative) into {!type-t}'s
    [metrics] at the join — no locks anywhere near the emulator. *)

type defense = Undefended | Software_only | Mavr_defense
type attack = V1 | V2 | V3

val defense_name : defense -> string
val attack_name : attack -> string

type cell = {
  defense : defense;
  attack : attack;
  trials : int;
  takeovers : int;  (** trials where the gyro-calibration write landed *)
  detections : int;  (** trials where master or ground station flagged *)
  halts : int;  (** trials where the app CPU ended halted *)
  detect_n : int;  (** trials with a timestamped first detection *)
  detect_ms_sum : float;
  detect_ms_max : float;
}

type t = {
  seed : int;
  trials : int;
  ms : int;  (** simulated flight length per trial *)
  cells : cell array;  (** 9 cells, defense-major, fixed order *)
  metrics : Mavr_telemetry.Metrics.registry;
      (** every trial's registry, merged *)
}

(** [run ?pool ?jobs ?ms ~seed ~trials build] — the full grid,
    [3 x 3 x trials] scenario flights of [ms] simulated milliseconds
    each (default 900; the attack is injected after a [ms/3] warm-up).
    The attacker's analysis of the unprotected [build] runs once; trial
    randomness (layout seeds, master seeds) is split per task from
    [seed]. *)
val run :
  ?pool:Mavr_campaign.Pool.t ->
  ?jobs:int ->
  ?ms:int ->
  seed:int ->
  trials:int ->
  Mavr_firmware.Build.t ->
  t

(** Grid marginals: totals across one defense's row of cells. *)
val takeovers : t -> defense -> int

val detections : t -> defense -> int

val mean_detect_ms : cell -> float

(** Deterministic JSON (cells in fixed order, metrics sorted by name).
    [with_metrics:false] drops the merged registry. *)
val to_json : ?with_metrics:bool -> t -> Mavr_telemetry.Json.t

val pp : Format.formatter -> t -> unit
