lib/avr/isa.mli: Format
