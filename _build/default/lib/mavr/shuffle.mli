(** Function-block permutations (§V-B2).

    The MAVR master processor draws a uniformly random permutation of the
    application's function symbols and computes the new block layout; the
    patcher ({!Patch}) then rewrites the control-flow targets.  With [n]
    symbols the defense offers [log2 n!] bits of layout entropy
    (§VIII-B). *)

type t = {
  order : int array;
      (** [order.(k)] is the index (into the image's ascending symbol
          list) of the function placed k-th in the new layout *)
  new_addr : int array;  (** new byte address of symbol [i] *)
}

(** [draw ~rng image] : a uniform permutation via Fisher–Yates. *)
val draw : rng:Mavr_prng.Splitmix.t -> Mavr_obj.Image.t -> t

(** [identity image] : the layout-preserving permutation (for tests). *)
val identity : Mavr_obj.Image.t -> t

(** [of_order image order] uses a caller-supplied order (e.g. a brute-force
    attacker enumerating permutations).
    @raise Invalid_argument if [order] is not a permutation of
    [0..n-1]. *)
val of_order : Mavr_obj.Image.t -> int array -> t

(** [is_identity t] *)
val is_identity : t -> bool

(** [map_addr image t old_addr] maps a byte address inside some function
    to its new address (same offset within the moved block).  Addresses
    outside the text section map to themselves. *)
val map_addr : Mavr_obj.Image.t -> t -> int -> int
