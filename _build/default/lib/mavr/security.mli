(** Brute-force effort and entropy analysis (§V-D, §VII-A1, §VIII-B).

    An attacker who cannot read the randomized binary must guess the
    permutation.  With [N = n!] equally likely layouts and sampling
    without replacement, success at attempt [j] has probability [1/N], so
    the expected effort is [(N+1)/2].  MAVR re-randomizes after every
    failed attempt, making every guess a fresh Bernoulli trial of
    probability [1/N] — expected effort [N].  All exact quantities use
    arbitrary-precision naturals. *)

(** [expected_attempts_static ~n] is [(n! + 1) / 2] — the software-only
    defense (single permanent permutation). *)
val expected_attempts_static : n:int -> Mavr_bignum.Nat.t

(** [expected_attempts_rerandomizing ~n] is [n!] — full MAVR. *)
val expected_attempts_rerandomizing : n:int -> Mavr_bignum.Nat.t

(** [entropy_bits ~n] is [log2 (n!)] — e.g. ~6567 bits for Ardurover's
    800 symbols. *)
val entropy_bits : n:int -> float

(** [entropy_bits_with_padding ~n ~slack_bytes] — the §VIII-B design the
    paper considered and rejected: distributing [slack_bytes] of random
    padding into the n+1 inter-function gaps adds
    [log2 (binomial (slack + n) n)] bits on top of the permutation's
    [log2 n!].  The paper's conclusion — the permutation alone is already
    computationally secure — is visible from how little the padding term
    adds relative to the factorial term. *)
val entropy_bits_with_padding : n:int -> slack_bytes:int -> float

(** [success_probability_at ~n ~j] for the static defense: exactly [1/N]
    for every [1 <= j <= N] (the paper's telescoping product), as a
    float. *)
val success_probability_at : n:int -> j:int -> float

(** {2 Monte-Carlo validation on small n}

    Empirical mean attempts over [trials] simulated attackers; compare
    with the closed forms above.  [n] must be small enough that [n!] fits
    an [int]. *)

val monte_carlo_static : n:int -> trials:int -> seed:int -> float

val monte_carlo_rerandomizing : n:int -> trials:int -> seed:int -> float

(** [factorial_int n] for small [n] (@raise Invalid_argument above 20). *)
val factorial_int : int -> int
