lib/mavr/gadget.mli: Format Mavr_avr Mavr_obj
