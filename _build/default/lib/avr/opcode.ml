open Isa

let fail fmt = Printf.ksprintf invalid_arg fmt

let check_reg name r = if r < 0 || r > 31 then fail "%s: bad register r%d" name r

let check_hreg name r =
  if r < 16 || r > 31 then fail "%s: register must be r16..r31, got r%d" name r

let check_imm8 name k = if k < 0 || k > 0xFF then fail "%s: immediate %d out of 0..255" name k

let check_io6 name a = if a < 0 || a > 63 then fail "%s: I/O address %d out of 0..63" name a

let check_io5 name a = if a < 0 || a > 31 then fail "%s: I/O address %d out of 0..31" name a

let check_bit name b = if b < 0 || b > 7 then fail "%s: bit %d out of 0..7" name b

(* Two-register ALU format: oooo oord dddd rrrr. *)
let two_reg op d r =
  check_reg "alu" d;
  check_reg "alu" r;
  op lor ((r land 0x10) lsl 5) lor (d lsl 4) lor (r land 0x0F)

(* Immediate format: oooo KKKK dddd KKKK with d in 16..31. *)
let imm_op op name d k =
  check_hreg name d;
  check_imm8 name k;
  op lor ((k land 0xF0) lsl 4) lor ((d - 16) lsl 4) lor (k land 0x0F)

(* One-register format: 1001 010d dddd offf. *)
let one_reg sub d =
  check_reg "unop" d;
  0x9400 lor (d lsl 4) lor sub

let displacement_word ~store ~base_y ~q ~r =
  if q < 0 || q > 63 then fail "ldd/std: displacement %d out of 0..63" q;
  check_reg "ldd/std" r;
  0x8000
  lor (if store then 0x0200 else 0)
  lor (if base_y then 0x0008 else 0)
  lor ((q land 0x20) lsl 8)
  lor ((q land 0x18) lsl 7)
  lor (q land 0x07)
  lor (r lsl 4)

let ld_st_word ~store ~sub ~r =
  check_reg "ld/st" r;
  (if store then 0x9200 else 0x9000) lor (r lsl 4) lor sub

let ptr_sub = function
  | X -> 0xC
  | X_inc -> 0xD
  | X_dec -> 0xE
  | Y_inc -> 0x9
  | Y_dec -> 0xA
  | Z_inc -> 0x1
  | Z_dec -> 0x2

let long_jump op addr =
  if addr < 0 || addr > 0x3FFFFF then fail "jmp/call: word address 0x%x out of range" addr;
  let high = (addr lsr 16) land 0x3F in
  let w1 = op lor ((high lsr 1) lsl 4) lor (high land 1) in
  [ w1; addr land 0xFFFF ]

let rel12 name k =
  if k < -2048 || k > 2047 then fail "%s: offset %d out of -2048..2047" name k;
  k land 0xFFF

let rel7 name k =
  if k < -64 || k > 63 then fail "%s: offset %d out of -64..63" name k;
  k land 0x7F

let adiw_word op d k =
  if d <> 24 && d <> 26 && d <> 28 && d <> 30 then fail "adiw/sbiw: register must be r24/r26/r28/r30";
  if k < 0 || k > 63 then fail "adiw/sbiw: immediate %d out of 0..63" k;
  op lor (((d - 24) / 2) lsl 4) lor ((k land 0x30) lsl 2) lor (k land 0x0F)

let io_bit_word op a b =
  check_io5 "sbi/cbi" a;
  check_bit "sbi/cbi" b;
  op lor (a lsl 3) lor b

let encode = function
  | Nop -> [ 0x0000 ]
  | Movw (d, r) ->
      if d land 1 <> 0 || r land 1 <> 0 then fail "movw: registers must be even";
      check_reg "movw" d;
      check_reg "movw" r;
      [ 0x0100 lor ((d / 2) lsl 4) lor (r / 2) ]
  | Cpc (d, r) -> [ two_reg 0x0400 d r ]
  | Sbc (d, r) -> [ two_reg 0x0800 d r ]
  | Add (d, r) -> [ two_reg 0x0C00 d r ]
  | Cpse (d, r) -> [ two_reg 0x1000 d r ]
  | Cp (d, r) -> [ two_reg 0x1400 d r ]
  | Sub (d, r) -> [ two_reg 0x1800 d r ]
  | Adc (d, r) -> [ two_reg 0x1C00 d r ]
  | And (d, r) -> [ two_reg 0x2000 d r ]
  | Eor (d, r) -> [ two_reg 0x2400 d r ]
  | Or (d, r) -> [ two_reg 0x2800 d r ]
  | Mov (d, r) -> [ two_reg 0x2C00 d r ]
  | Cpi (d, k) -> [ imm_op 0x3000 "cpi" d k ]
  | Sbci (d, k) -> [ imm_op 0x4000 "sbci" d k ]
  | Subi (d, k) -> [ imm_op 0x5000 "subi" d k ]
  | Ori (d, k) -> [ imm_op 0x6000 "ori" d k ]
  | Andi (d, k) -> [ imm_op 0x7000 "andi" d k ]
  | Ldi (d, k) -> [ imm_op 0xE000 "ldi" d k ]
  | Ldd (d, Y, q) -> [ displacement_word ~store:false ~base_y:true ~q ~r:d ]
  | Ldd (d, Z, q) -> [ displacement_word ~store:false ~base_y:false ~q ~r:d ]
  | Std (Y, q, r) -> [ displacement_word ~store:true ~base_y:true ~q ~r ]
  | Std (Z, q, r) -> [ displacement_word ~store:true ~base_y:false ~q ~r ]
  | Lds (d, a) ->
      if a < 0 || a > 0xFFFF then fail "lds: address out of range";
      [ ld_st_word ~store:false ~sub:0x0 ~r:d; a ]
  | Sts (a, r) ->
      if a < 0 || a > 0xFFFF then fail "sts: address out of range";
      [ ld_st_word ~store:true ~sub:0x0 ~r; a ]
  | Ld (d, p) -> [ ld_st_word ~store:false ~sub:(ptr_sub p) ~r:d ]
  | St (p, r) -> [ ld_st_word ~store:true ~sub:(ptr_sub p) ~r ]
  | Lpm (d, inc) -> [ ld_st_word ~store:false ~sub:(if inc then 0x5 else 0x4) ~r:d ]
  | Elpm (d, inc) -> [ ld_st_word ~store:false ~sub:(if inc then 0x7 else 0x6) ~r:d ]
  | Pop r -> [ ld_st_word ~store:false ~sub:0xF ~r ]
  | Push r -> [ ld_st_word ~store:true ~sub:0xF ~r ]
  | Com d -> [ one_reg 0x0 d ]
  | Neg d -> [ one_reg 0x1 d ]
  | Swap d -> [ one_reg 0x2 d ]
  | Inc d -> [ one_reg 0x3 d ]
  | Asr d -> [ one_reg 0x5 d ]
  | Lsr d -> [ one_reg 0x6 d ]
  | Ror d -> [ one_reg 0x7 d ]
  | Dec d -> [ one_reg 0xA d ]
  | Bset b ->
      check_bit "bset" b;
      [ 0x9408 lor (b lsl 4) ]
  | Bclr b ->
      check_bit "bclr" b;
      [ 0x9488 lor (b lsl 4) ]
  | Ret -> [ 0x9508 ]
  | Reti -> [ 0x9518 ]
  | Ijmp -> [ 0x9409 ]
  | Icall -> [ 0x9509 ]
  | Sleep -> [ 0x9588 ]
  | Break -> [ 0x9598 ]
  | Wdr -> [ 0x95A8 ]
  | Lpm0 -> [ 0x95C8 ]
  | Elpm0 -> [ 0x95D8 ]
  | Jmp a -> long_jump 0x940C a
  | Call a -> long_jump 0x940E a
  | Adiw (d, k) -> [ adiw_word 0x9600 d k ]
  | Sbiw (d, k) -> [ adiw_word 0x9700 d k ]
  | Cbi (a, b) -> [ io_bit_word 0x9800 a b ]
  | Sbic (a, b) -> [ io_bit_word 0x9900 a b ]
  | Sbi (a, b) -> [ io_bit_word 0x9A00 a b ]
  | Sbis (a, b) -> [ io_bit_word 0x9B00 a b ]
  | Mul (d, r) -> [ two_reg 0x9C00 d r ]
  | Bld (d, b) ->
      check_reg "bld" d;
      check_bit "bld" b;
      [ 0xF800 lor (d lsl 4) lor b ]
  | Bst (d, b) ->
      check_reg "bst" d;
      check_bit "bst" b;
      [ 0xFA00 lor (d lsl 4) lor b ]
  | Sbrc (r, b) ->
      check_reg "sbrc" r;
      check_bit "sbrc" b;
      [ 0xFC00 lor (r lsl 4) lor b ]
  | Sbrs (r, b) ->
      check_reg "sbrs" r;
      check_bit "sbrs" b;
      [ 0xFE00 lor (r lsl 4) lor b ]
  | In (d, a) ->
      check_reg "in" d;
      check_io6 "in" a;
      [ 0xB000 lor ((a land 0x30) lsl 5) lor (d lsl 4) lor (a land 0x0F) ]
  | Out (a, r) ->
      check_reg "out" r;
      check_io6 "out" a;
      [ 0xB800 lor ((a land 0x30) lsl 5) lor (r lsl 4) lor (a land 0x0F) ]
  | Rjmp k -> [ 0xC000 lor rel12 "rjmp" k ]
  | Rcall k -> [ 0xD000 lor rel12 "rcall" k ]
  | Brbs (b, k) ->
      check_bit "brbs" b;
      [ 0xF000 lor (rel7 "brbs" k lsl 3) lor b ]
  | Brbc (b, k) ->
      check_bit "brbc" b;
      [ 0xF400 lor (rel7 "brbc" k lsl 3) lor b ]
  | Data w ->
      if w < 0 || w > 0xFFFF then fail "data: word out of range";
      [ w ]

let encode_bytes i =
  let words = encode i in
  let buf = Buffer.create 4 in
  List.iter
    (fun w ->
      Buffer.add_char buf (Char.chr (w land 0xFF));
      Buffer.add_char buf (Char.chr ((w lsr 8) land 0xFF)))
    words;
  Buffer.contents buf

let validate i = try ignore (encode i); Ok () with Invalid_argument m -> Error m
