(* PR 10's dispatcher contract: shard planning stays cell-aligned and
   covering, worker addresses parse, a faked worker speaking the
   Service protocol gets its entries merged (duplicates deduplicated,
   fresh indices ticking progress), a stalled worker trips the
   heartbeat timeout and exhausts its attempts into [Unresolved], and
   an empty pool is refused outright. *)

module Dispatch = Mavr_campaign.Dispatch
module Checkpoint = Mavr_campaign.Checkpoint
module Progress = Mavr_campaign.Progress
module Service = Mavr_campaign.Service
module Montecarlo = Mavr_sim.Montecarlo
module Json = Mavr_telemetry.Json

let profile_name = Helpers.tiny_profile.Mavr_firmware.Profile.name

let spec ~trials () =
  Montecarlo.checkpoint_spec ~ms:600 ~profile:profile_name ~seed:11 ~trials ()

let tmp_sock name =
  let path = Filename.temp_file ("mavr_disp_" ^ name) ".sock" in
  Sys.remove path;
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* ---- planning -------------------------------------------------------- *)

let test_plan_alignment () =
  let check_cover ~tasks ~block shards =
    (* contiguous, block-aligned, covering [0, tasks) *)
    let next = ref 0 in
    List.iter
      (fun sh ->
        Alcotest.(check int) "contiguous" !next sh.Dispatch.lo;
        Alcotest.(check bool) "nonempty" true (sh.Dispatch.hi > sh.Dispatch.lo);
        Alcotest.(check int) "lo aligned" 0 (sh.Dispatch.lo mod block);
        Alcotest.(check int) "hi aligned" 0 (sh.Dispatch.hi mod block);
        next := sh.Dispatch.hi)
      shards;
    Alcotest.(check int) "covers task space" tasks !next
  in
  check_cover ~tasks:48 ~block:12 (Dispatch.plan ~tasks:48 ~block:12 ~shards:3);
  check_cover ~tasks:48 ~block:12 (Dispatch.plan ~tasks:48 ~block:12 ~shards:4);
  check_cover ~tasks:60 ~block:5 (Dispatch.plan ~tasks:60 ~block:5 ~shards:7);
  (* more shards than cells collapses to one shard per cell *)
  let sh = Dispatch.plan ~tasks:24 ~block:12 ~shards:10 in
  Alcotest.(check int) "capped at cell count" 2 (List.length sh);
  check_cover ~tasks:24 ~block:12 sh;
  (* near-even: no shard more than one cell larger than another *)
  let sizes =
    Dispatch.plan ~tasks:70 ~block:7 ~shards:3
    |> List.map (fun s -> (s.Dispatch.hi - s.Dispatch.lo) / 7)
  in
  let mn = List.fold_left min max_int sizes and mx = List.fold_left max 0 sizes in
  Alcotest.(check bool) "near-even split" true (mx - mn <= 1);
  Alcotest.check_raises "misaligned task count rejected"
    (Invalid_argument "Campaign.Dispatch.plan: 10 tasks not a multiple of block 3") (fun () ->
      ignore (Dispatch.plan ~tasks:10 ~block:3 ~shards:2))

let test_address_parsing () =
  let ok = Alcotest.(check bool) in
  ok "unix scheme" true (Dispatch.address_of_string "unix:/tmp/w.sock" = Ok (Dispatch.Unix_socket "/tmp/w.sock"));
  ok "bare path" true (Dispatch.address_of_string "/tmp/w.sock" = Ok (Dispatch.Unix_socket "/tmp/w.sock"));
  ok "empty rejected" true (Result.is_error (Dispatch.address_of_string ""));
  ok "empty unix path rejected" true (Result.is_error (Dispatch.address_of_string "unix:"));
  ok "unknown scheme rejected" true (Result.is_error (Dispatch.address_of_string "tcp:host:1"));
  Alcotest.(check string) "roundtrip" "unix:/tmp/w.sock"
    (Dispatch.address_to_string (Dispatch.Unix_socket "/tmp/w.sock"))

(* ---- merge over a faked worker --------------------------------------- *)

(* A worker that speaks the Service protocol by hand: header, one
   duplicated entry, every index in the shard, terminal result.  The
   dispatcher must deduplicate, keep the frontier gap-free, and tick
   progress exactly once per fresh index. *)
let test_merge_over_fake_worker () =
  let sp = spec ~trials:1 () in
  let shards = Dispatch.plan ~tasks:sp.Checkpoint.tasks ~block:1 ~shards:2 in
  let socket = tmp_sock "fake" in
  let handler req ~progress =
    let geti k j = Option.bind (Json.member k j) Json.to_int in
    match Option.bind (Json.member "shard" req) (fun s -> Some (geti "lo" s, geti "hi" s)) with
    | Some (Some lo, Some hi) ->
        progress
          (Json.to_string
             (Json.Obj
                [
                  ("kind", Json.String "header");
                  ("version", Json.Int 1);
                  ("spec_hash", Json.String sp.Checkpoint.spec_hash);
                  ("seed", Json.Int sp.Checkpoint.seed);
                  ("tasks", Json.Int sp.Checkpoint.tasks);
                ]));
        let entry i =
          Json.to_string
            (Json.Obj
               [
                 ("kind", Json.String "task");
                 ("index", Json.Int i);
                 ("result", Json.Obj [ ("v", Json.Int i) ]);
               ])
        in
        (* duplicate the first index deliberately *)
        progress (entry lo);
        for i = lo to hi - 1 do
          progress (entry i)
        done;
        progress {|{"seq":0,"done":0,"total":0}|};
        Ok (Json.Obj [ ("entries", Json.Int (hi - lo)) ])
    | _ -> Error "no shard in request"
  in
  let d =
    Domain.spawn (fun () ->
        Service.serve ~socket ~max_requests:(List.length shards) handler)
  in
  let ticks = ref 0 in
  let on_event = function Dispatch.Entry_received { fresh = true; _ } -> incr ticks | _ -> () in
  let request ~lo ~hi =
    Json.Obj [ ("shard", Json.Obj [ ("lo", Json.Int lo); ("hi", Json.Int hi) ]) ]
  in
  let outcome =
    Dispatch.run ~heartbeat_timeout_s:10.0 ~on_event ~spec:sp ~request ~block:1
      ~workers:[ Dispatch.Unix_socket socket ] ~shards ()
  in
  (match Domain.join d with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("fake worker died: " ^ e));
  match outcome with
  | Error e -> Alcotest.fail (Dispatch.error_to_string e)
  | Ok o ->
      Alcotest.(check int) "gap-free merged frontier" sp.Checkpoint.tasks
        (List.length o.Dispatch.entries);
      List.iteri
        (fun i (idx, entry) ->
          Alcotest.(check int) "sorted by index" i idx;
          match entry with
          | Checkpoint.Result r ->
              Alcotest.(check (option int)) "payload preserved" (Some i)
                (Option.bind (Json.member "v" r) Json.to_int)
          | Checkpoint.Skip _ -> Alcotest.fail "unexpected skip entry")
        o.Dispatch.entries;
      Alcotest.(check int) "fresh ticks = tasks (duplicates not fresh)" sp.Checkpoint.tasks
        !ticks;
      Alcotest.(check bool) "worker heartbeats observed" true (o.Dispatch.heartbeats >= 1);
      Alcotest.(check int) "no failures" 0 o.Dispatch.worker_failures

(* ---- failure paths --------------------------------------------------- *)

let test_stalled_worker_unresolved () =
  let sp = spec ~trials:1 () in
  let socket = tmp_sock "stall" in
  (* a worker that accepts the request and then goes silent *)
  let handler _req ~progress:_ =
    ignore (Unix.select [] [] [] 2.0);
    Error "too late"
  in
  let d = Domain.spawn (fun () -> Service.serve ~socket ~max_requests:1 handler) in
  let request ~lo ~hi =
    Json.Obj [ ("shard", Json.Obj [ ("lo", Json.Int lo); ("hi", Json.Int hi) ]) ]
  in
  let result =
    Dispatch.run ~heartbeat_timeout_s:0.25 ~max_attempts:1 ~spec:sp ~request ~block:1
      ~workers:[ Dispatch.Unix_socket socket ]
      ~shards:[ { Dispatch.lo = 0; hi = sp.Checkpoint.tasks } ]
      ()
  in
  (match result with
  | Error (Dispatch.Unresolved { attempts; _ }) ->
      Alcotest.(check int) "attempts charged" 1 attempts
  | Error Dispatch.No_workers -> Alcotest.fail "expected Unresolved, got No_workers"
  | Ok _ -> Alcotest.fail "stalled worker should not complete the campaign");
  ignore (Domain.join d)

let test_no_workers () =
  let sp = spec ~trials:1 () in
  let request ~lo:_ ~hi:_ = Json.Obj [] in
  match
    Dispatch.run ~spec:sp ~request ~block:1 ~workers:[]
      ~shards:[ { Dispatch.lo = 0; hi = sp.Checkpoint.tasks } ]
      ()
  with
  | Error Dispatch.No_workers -> ()
  | Error e -> Alcotest.fail ("expected No_workers, got " ^ Dispatch.error_to_string e)
  | Ok _ -> Alcotest.fail "empty pool must not succeed"

let () =
  Alcotest.run "dispatch"
    [
      ( "planning",
        [
          Alcotest.test_case "cell-aligned covering shards" `Quick test_plan_alignment;
          Alcotest.test_case "address parsing" `Quick test_address_parsing;
        ] );
      ( "merge",
        [ Alcotest.test_case "fake worker, dedup + gap-free" `Quick test_merge_over_fake_worker ] );
      ( "failure",
        [
          Alcotest.test_case "stalled worker -> Unresolved" `Quick test_stalled_worker_unresolved;
          Alcotest.test_case "empty pool -> No_workers" `Quick test_no_workers;
        ] );
    ]
