(** SplitMix64 pseudo-random number generator.

    Every random choice in this repository — firmware code generation,
    MAVR's randomization permutations, attack fuzzing — flows from an
    explicit seed through this generator, so all experiments are
    reproducible bit-for-bit. *)

type t

val create : seed:int -> t

(** Next raw 64-bit (truncated to OCaml's 63-bit int, non-negative). *)
val next : t -> int

(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument when [bound <= 0]. *)
val int : t -> int -> int

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

val bool : t -> bool

(** [pick t arr] uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] in-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [split t] derives an independent generator. *)
val split : t -> t
