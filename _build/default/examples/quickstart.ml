(* Quickstart: build a firmware, randomize it with MAVR, and verify both
   images behave identically while exposing different layouts.

     dune exec examples/quickstart.exe
*)

module Cpu = Mavr_avr.Cpu
module Io = Mavr_avr.Device.Io
module Image = Mavr_obj.Image

let run_and_collect image =
  let cpu = Cpu.create () in
  Cpu.load_program cpu image.Image.code;
  (* Pretend the IMU reports a constant rate. *)
  Cpu.io_poke cpu Io.gyro_lo 0x10;
  Cpu.io_poke cpu Io.gyro_hi 0x02;
  ignore (Cpu.run cpu ~max_cycles:400_000);
  (Cpu.uart_take_tx cpu, Cpu.watchdog_feeds cpu)

let () =
  print_endline "== MAVR quickstart ==";

  (* 1. Build a small autopilot firmware with the MAVR toolchain flags
     (--no-relax, no shared call prologues). *)
  let profile = Mavr_firmware.Profile.tiny ~n:100 ~seed:2024 in
  let build = Mavr_firmware.Build.build profile Mavr_firmware.Profile.mavr in
  Format.printf "built firmware: %a@." Image.pp_summary build.image;

  (* 2. Preprocess: extract symbols and produce the prepended HEX that is
     stored on MAVR's external flash chip. *)
  let hex = Mavr_obj.Symtab.to_hex build.image in
  Format.printf "preprocessed HEX: %d bytes (%d records)@." (String.length hex)
    (List.length (String.split_on_char '\n' hex) - 1);

  (* 3. Randomize: what the master processor does at boot. *)
  let randomized = Mavr_core.Randomize.randomize ~seed:42 build.image in
  Format.printf "randomized: %d/%d functions moved@."
    (Mavr_core.Randomize.layout_distance build.image randomized)
    (Image.function_count build.image);

  (* 4. Both images run identically... *)
  let tx_a, feeds_a = run_and_collect build.image in
  let tx_b, feeds_b = run_and_collect randomized in
  Format.printf "original:   %4d telemetry bytes, %d watchdog feeds@." (String.length tx_a) feeds_a;
  Format.printf "randomized: %4d telemetry bytes, %d watchdog feeds@." (String.length tx_b) feeds_b;
  Format.printf "behaviour identical: %b@." (tx_a = tx_b && feeds_a = feeds_b);

  (* 5. ... but the attacker's gadget addresses moved. *)
  let show img =
    match Mavr_core.Gadget.locate_paper_gadgets img with
    | Some g -> Format.printf "  stk_move at 0x%05x, write_mem at 0x%05x@." g.stk_move g.write_mem
    | None -> print_endline "  (gadgets not found)"
  in
  print_endline "gadget addresses, original image:";
  show build.image;
  print_endline "gadget addresses, randomized image:";
  show randomized;

  (* 6. Security margin of the layout secret. *)
  let n = Image.function_count build.image in
  Format.printf "layout entropy with %d functions: %.0f bits (brute force E = %s attempts)@." n
    (Mavr_core.Security.entropy_bits ~n)
    (let e = Mavr_core.Security.expected_attempts_rerandomizing ~n in
     if Mavr_bignum.Nat.digits e > 24 then
       Printf.sprintf "a %d-digit number of" (Mavr_bignum.Nat.digits e)
     else Mavr_bignum.Nat.to_string e)
