(* Superblock engine equivalence and the cycle-accounting bugfix sweep:
   differential fuzz against single-step ground truth over randomized
   firmware of all three profiles (with mid-run SEU flash flips and
   corrupted reflash lifetimes bumping the flash epoch), the saturating
   run budget, masked-vs-dispatch interrupt latency, and mid-run tap
   toggling from inside a tap callback. *)

module Cpu = Mavr_avr.Cpu
module Isa = Mavr_avr.Isa
module Io = Mavr_avr.Device.Io
module Opcode = Mavr_avr.Opcode
module Image = Mavr_obj.Image
module Cfg = Mavr_analysis.Cfg
module Splitmix = Mavr_prng.Splitmix
module Seu = Mavr_fault.Seu
module Reflash = Mavr_fault.Reflash

let load ?(superblocks = true) insns =
  let cpu = Cpu.create () in
  Cpu.set_superblocks cpu superblocks;
  Cpu.load_program cpu (String.concat "" (List.map Opcode.encode_bytes insns));
  cpu

let arch_state cpu =
  ( Cpu.pc cpu,
    Cpu.sp cpu,
    Cpu.sreg cpu,
    Cpu.cycles cpu,
    Cpu.instructions_retired cpu,
    Cpu.halted cpu,
    Cpu.interrupts_taken cpu,
    Cpu.watchdog_feeds cpu,
    Cpu.sp_watermark cpu,
    List.init 32 (Cpu.reg cpu) )

let boot_pair (image : Image.t) =
  let mk superblocks =
    let cpu = Cpu.create () in
    Cpu.set_superblocks cpu superblocks;
    Cpu.load_program cpu image.Image.code;
    cpu
  in
  (mk true, mk false)

(* The engines may legally stop at different points for the same budget
   (block-boundary overshoot), so single-step the laggard until both sit
   on the same cycle count — both trajectories visit the same
   instruction-boundary states, so this converges iff they agree. *)
let align_pair a b =
  let rec go fuel =
    let ca = Cpu.cycles a and cb = Cpu.cycles b in
    if ca = cb || fuel = 0 then ()
    else if ca < cb && Cpu.halted a = None then (Cpu.step a; go (fuel - 1))
    else if cb < ca && Cpu.halted b = None then (Cpu.step b; go (fuel - 1))
    else ()
  in
  go 100_000

let check_same name fused stepped =
  Alcotest.(check bool) (name ^ ": architectural state identical") true
    (arch_state fused = arch_state stepped);
  Alcotest.(check string) (name ^ ": identical UART output")
    (Cpu.uart_take_tx stepped) (Cpu.uart_take_tx fused)

(* ---- differential fuzz ---------------------------------------------- *)

let frame seq =
  Mavr_mavlink.Frame.encode
    { Mavr_mavlink.Frame.seq; sysid = 255; compid = 0; msgid = 76; payload = "go" }

(* Drive both engines through identical slices, comparing full state and
   UART output at every boundary.  [fault] additionally applies
   identically seeded SEU upsets (SRAM pokes and flash bit flips — the
   latter bump the flash epoch mid-run, the stale-fused-code hazard) and
   one corrupted-reflash lifetime halfway through. *)
let diff_run name (image : Image.t) ~seed ~slices ~slice_cycles ~fault =
  let fused, stepped = boot_pair image in
  let seu_for s =
    Seu.create
      ~rng:(Splitmix.create ~seed:(s * 7919))
      { Seu.sram_flip_ppm = 400_000; flash_flip_ppm = 400_000 }
  in
  let seu_fused = seu_for seed and seu_stepped = seu_for seed in
  for slice = 1 to slices do
    if slice mod 3 = 0 then begin
      let f = frame slice in
      Cpu.uart_send fused f;
      Cpu.uart_send stepped f
    end;
    ignore (Cpu.run fused ~max_cycles:slice_cycles);
    ignore (Cpu.run stepped ~max_cycles:slice_cycles);
    align_pair fused stepped;
    check_same (Printf.sprintf "%s seed=%d slice=%d" name seed slice) fused stepped;
    if fault then begin
      Seu.tick seu_fused fused;
      Seu.tick seu_stepped stepped;
      if slice = slices / 2 then begin
        let rf =
          Reflash.create
            ~rng:(Splitmix.create ~seed:(seed * 31))
            { Reflash.page_corrupt_ppm = 200_000; max_retries = 3 }
        in
        let streamed, _ = Reflash.stream rf ~page_bytes:256 image.Image.code in
        Cpu.load_program fused streamed;
        Cpu.load_program stepped streamed
      end
    end
  done

(* Randomized firmware: a fresh generator seed rebuilds each profile
   with different code layout; the mavr profile additionally gets
   per-lifetime layout randomization (the MAVR defense itself). *)
let randomized_images (name, variant) =
  let build gen_seed =
    (Mavr_firmware.Build.build (Mavr_firmware.Profile.tiny ~n:120 ~seed:gen_seed) variant)
      .Mavr_firmware.Build.image
  in
  [ (name ^ "/gen99", build 99); (name ^ "/gen7", build 7) ]

let fuzz_profiles =
  lazy
    (List.concat_map randomized_images
       [
         ("mavr", Mavr_firmware.Profile.mavr);
         ("stock", Mavr_firmware.Profile.stock);
         ("patched", Mavr_firmware.Profile.patched);
       ]
    @ (* layout-randomized reflash generations of the mavr image *)
    List.map
      (fun seed ->
        ( Printf.sprintf "mavr/layout%d" seed,
          Mavr_core.Randomize.randomize ~seed (Helpers.build_mavr ()).image ))
      [ 3; 17 ])

let test_differential_clean () =
  List.iter
    (fun (name, image) ->
      diff_run name image ~seed:11 ~slices:8 ~slice_cycles:40_000 ~fault:false)
    (Lazy.force fuzz_profiles)

let test_differential_faulted () =
  List.iter
    (fun (name, image) ->
      List.iter
        (fun seed -> diff_run name image ~seed ~slices:10 ~slice_cycles:25_000 ~fault:true)
        [ 5; 23 ])
    (Lazy.force fuzz_profiles)

let test_attack_identical_on_and_off () =
  (* The stealthy ROP chain exercises mid-instruction gadget entries and
     the cli window; the fused engine must land the identical write. *)
  let b, ti, obs = Helpers.attack_target () in
  let run superblocks =
    let cpu = Cpu.create () in
    Cpu.set_superblocks cpu superblocks;
    Cpu.load_program cpu b.image.Image.code;
    Cpu.io_poke cpu Io.gyro_lo 0x34;
    Cpu.io_poke cpu Io.gyro_hi 0x12;
    ignore (Cpu.run cpu ~max_cycles:60_000);
    List.iter (Cpu.uart_send cpu)
      (Mavr_core.Rop.v2_stealthy ti obs
         ~writes:
           [
             Mavr_core.Rop.write_u16 obs ~addr:Mavr_firmware.Layout.gyro_cfg
               ~value:0x4000 ~neighbour:0;
           ]);
    ignore (Cpu.run cpu ~max_cycles:3_000_000);
    cpu
  in
  let on = run true and off = run false in
  align_pair on off;
  let cfg cpu =
    Cpu.data_peek cpu Mavr_firmware.Layout.gyro_cfg
    lor (Cpu.data_peek cpu (Mavr_firmware.Layout.gyro_cfg + 1) lsl 8)
  in
  Alcotest.(check int) "attack landed under superblocks" 0x4000 (cfg on);
  Alcotest.(check int) "attack landed when stepping" 0x4000 (cfg off);
  Alcotest.(check bool) "identical attack outcome" true (arch_state on = arch_state off)

(* ---- satellite 1: saturating run budget ----------------------------- *)

let test_max_int_budget_runs () =
  (* Pre-fix, [stop = t.cycles + max_int] wrapped negative and the loop
     returned [`Budget_exhausted] without retiring a single
     instruction. *)
  let cpu = load Isa.[ Ldi (16, 7); Break ] in
  (match Cpu.run cpu ~max_cycles:max_int with
  | `Halted Cpu.Break_hit -> ()
  | `Halted h -> Alcotest.failf "unexpected halt: %s" (Format.asprintf "%a" Cpu.pp_halt h)
  | `Budget_exhausted -> Alcotest.fail "max_int budget exhausted instantly (overflow)");
  Alcotest.(check int) "program actually ran" 7 (Cpu.reg cpu 16);
  (* Same for the other two entry points. *)
  let cpu = load Isa.[ Ldi (17, 9); Break ] in
  (match Cpu.run_until_halt cpu ~max_cycles:max_int with
  | Some Cpu.Break_hit -> ()
  | _ -> Alcotest.fail "run_until_halt overflowed the budget");
  let cpu = load Isa.[ Ldi (18, 4); Rjmp (-1) ] in
  match Cpu.run_until cpu ~max_cycles:max_int (fun c -> Cpu.reg c 18 = 4) with
  | `Pred -> ()
  | _ -> Alcotest.fail "run_until overflowed the budget"

let test_overshoot_bounded_by_one_block () =
  (* A long straight-line block entered with a 1-cycle budget: execution
     stops at the first block boundary, i.e. overshoot < the block's
     cycle span, not unbounded. *)
  let body = List.init 40 (fun _ -> Isa.Nop) in
  let cpu = load (body @ Isa.[ Rjmp (-41) ]) in
  ignore (Cpu.run cpu ~max_cycles:1);
  Alcotest.(check bool) "made progress" true (Cpu.cycles cpu >= 1);
  (* The trace compiler follows the back-edge, so one block spans up to
     [max_block_insns] = 64 instructions; nothing here costs more than
     2 cycles, so one block is at most 128 cycles. *)
  Alcotest.(check bool) "overshoot bounded by one block" true (Cpu.cycles cpu <= 128)

(* ---- satellite 2: masked time vs dispatch latency ------------------- *)

let test_masked_latency_split () =
  (* Arm the timer with interrupts disabled, burn a long delay loop, then
     sei: the compare match pends across the masked window.  The tap must
     bill that window as [masked], not dispatch [latency]. *)
  let insns =
    Isa.[
      Jmp 4 (* reset *);
      Jmp 14 (* timer vector -> isr *);
      (* main, word 4: arm timer, period (1+1)*64 = 128 cycles *)
      Ldi (24, 1); Out (Io.ocr, 24);
      Ldi (24, 1); Out (Io.tccr, 24);
      (* delay ~3*200 cycles with I clear *)
      Ldi (25, 200);
      (* word 9: *) Dec 25;
      Brbc (1, -2) (* until Z *);
      Bset 7 (* sei, word 11 *);
      Rjmp (-1) (* word 12: idle *);
      Nop (* word 13: pad *);
      (* isr, word 14: *) Inc 20; Reti;
    ]
  in
  let events = ref [] in
  let cpu = load insns in
  Cpu.set_irq_tap cpu
    (Some (fun ~latency ~masked -> events := (latency, masked) :: !events));
  ignore (Cpu.run cpu ~max_cycles:5_000);
  (match List.rev !events with
  | [] -> Alcotest.fail "no interrupt taken"
  | (latency, masked) :: _rest ->
      (* The first pending compare spent the delay loop masked: roughly
         3*200 - 128 cycles, far above any dispatch latency. *)
      Alcotest.(check bool) "masked window billed separately" true (masked > 300);
      Alcotest.(check bool) "dispatch latency small" true (latency >= 0 && latency < 20));
  (* Identical split with superblocks off. *)
  let events_off = ref [] in
  let cpu = load ~superblocks:false insns in
  Cpu.set_irq_tap cpu
    (Some (fun ~latency ~masked -> events_off := (latency, masked) :: !events_off));
  ignore (Cpu.run cpu ~max_cycles:5_000);
  Alcotest.(check bool) "split identical on/off" true (!events = !events_off)

(* ---- satellite 3: tap toggling at block boundaries ------------------ *)

let counting_program =
  (* A bounded loop long enough to span several fused traces even with
     the 64-instruction unrolling cap: r16 counts down from 200, then
     break. *)
  Isa.[ Ldi (16, 200); (* word 1 *) Dec 16; Brbc (1, -2); Break ]

let test_tap_removed_from_inside_callback () =
  let reference = load counting_program in
  ignore (Cpu.run reference ~max_cycles:1_000);
  let cpu = load counting_program in
  let fired = ref 0 in
  Cpu.set_insn_tap cpu
    (Some
       (fun _ _ ->
         incr fired;
         if !fired = 5 then Cpu.set_insn_tap cpu None));
  ignore (Cpu.run cpu ~max_cycles:1_000);
  Alcotest.(check int) "tap stopped firing after self-removal" 5 !fired;
  Alcotest.(check bool) "tap inactive" false (Cpu.insn_tap_active cpu);
  Alcotest.(check bool) "execution unperturbed" true
    (arch_state cpu = arch_state reference)

let test_tap_installed_from_inside_block_tap () =
  let reference = load counting_program in
  ignore (Cpu.run reference ~max_cycles:1_000);
  let cpu = load counting_program in
  let blocks = ref 0 and insns = ref 0 in
  let on_block _info _count =
    incr blocks;
    if !blocks = 2 then
      (* Switch granularity mid-run, from inside the callback: the insn
         tap must take over at the next boundary, never re-running or
         skipping fused code. *)
      Cpu.set_insn_tap cpu (Some (fun _ _ -> incr insns))
  in
  Cpu.set_block_tap cpu ~on_block ~on_step:(fun _ _ -> ());
  ignore (Cpu.run cpu ~max_cycles:1_000);
  Alcotest.(check int) "block tap fired before the switch" 2 !blocks;
  Alcotest.(check bool) "insn tap took over" true (!insns > 0);
  Alcotest.(check bool) "execution unperturbed" true
    (arch_state cpu = arch_state reference)

let test_block_tap_counts_partition_retired () =
  let cpu = load counting_program in
  let seen = ref 0 in
  Cpu.set_block_tap cpu
    ~on_block:(fun info count ->
      Alcotest.(check bool) "count within block" true
        (count >= 1 && count <= Array.length info.Cpu.bi_insns);
      seen := !seen + count)
    ~on_step:(fun _ _ -> incr seen);
  ignore (Cpu.run cpu ~max_cycles:1_000);
  Alcotest.(check int) "block counts partition retirements"
    (Cpu.instructions_retired cpu) !seen

let test_superblocks_toggle_mid_run () =
  let image = (Helpers.build_mavr ()).image in
  let run toggle =
    let cpu = Cpu.create () in
    Cpu.load_program cpu image.Image.code;
    ignore (Cpu.run cpu ~max_cycles:50_000);
    if toggle then Cpu.set_superblocks cpu false;
    ignore (Cpu.run cpu ~max_cycles:50_000);
    if toggle then Cpu.set_superblocks cpu true;
    ignore (Cpu.run cpu ~max_cycles:50_000);
    cpu
  in
  let toggled = run true and plain = run false in
  align_pair toggled plain;
  Alcotest.(check bool) "mid-run toggle equivalent" true
    (arch_state toggled = arch_state plain)

(* ---- static precompile hint ----------------------------------------- *)

let test_precompile_from_cfg () =
  let image = (Helpers.build_mavr ()).image in
  let cfg = Cfg.recover image in
  let starts = Cfg.block_start_words cfg in
  Alcotest.(check bool) "cfg exports block starts" true (List.length starts > 10);
  let cpu = Cpu.create () in
  Cpu.load_program cpu image.Image.code;
  let compiled = Cpu.precompile cpu starts in
  Alcotest.(check bool) "blocks compiled eagerly" true (compiled > 10);
  ignore (Cpu.run cpu ~max_cycles:200_000);
  let lazy_cpu = Cpu.create () in
  Cpu.load_program lazy_cpu image.Image.code;
  ignore (Cpu.run lazy_cpu ~max_cycles:200_000);
  Alcotest.(check bool) "precompiled run identical" true
    (arch_state cpu = arch_state lazy_cpu)

let () =
  Alcotest.run "superblock"
    [
      ( "differential",
        [
          Alcotest.test_case "clean profiles vs single-step" `Quick test_differential_clean;
          Alcotest.test_case "SEU + corrupted reflash epochs" `Quick
            test_differential_faulted;
          Alcotest.test_case "ROP attack identical on/off" `Quick
            test_attack_identical_on_and_off;
        ] );
      ( "budget",
        [
          Alcotest.test_case "max_int budget saturates" `Quick test_max_int_budget_runs;
          Alcotest.test_case "overshoot bounded by one block" `Quick
            test_overshoot_bounded_by_one_block;
        ] );
      ( "irq-accounting",
        [ Alcotest.test_case "masked vs dispatch latency" `Quick test_masked_latency_split ] );
      ( "tap-toggling",
        [
          Alcotest.test_case "self-removal from callback" `Quick
            test_tap_removed_from_inside_callback;
          Alcotest.test_case "install from block tap" `Quick
            test_tap_installed_from_inside_block_tap;
          Alcotest.test_case "block counts partition retired" `Quick
            test_block_tap_counts_partition_retired;
          Alcotest.test_case "engine toggle mid-run" `Quick test_superblocks_toggle_mid_run;
        ] );
      ( "precompile",
        [ Alcotest.test_case "cfg block starts" `Quick test_precompile_from_cfg ] );
    ]
