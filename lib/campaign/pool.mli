(** Fixed-size domain pool: a parallel-for over task indices.

    [jobs - 1] worker domains are spawned once at {!create} and parked on
    a condition variable; each {!run} publishes one job (a body over
    indices [0 .. tasks-1]) that the workers {e and the calling domain}
    drain from a chunked atomic queue.  Scheduling is dynamic (chunks go
    to whichever domain is free), so callers must not depend on which
    domain runs which index — determinism comes from writing results into
    index-addressed slots, which {!Engine.map} does.

    Task exceptions are never swallowed: every scheduled task still runs,
    then {!run} raises {!Task_failed} for the {e lowest} failing index —
    deterministic for any [jobs], including 1. *)

type t

exception Task_failed of { index : int; exn : exn; backtrace : string }

(** [create ?jobs ()] spawns the pool.  [jobs] defaults to
    [Domain.recommended_domain_count ()] capped at {!max_jobs}; [jobs = 1]
    spawns no domains and makes {!run} purely sequential.
    @raise Invalid_argument when [jobs < 1]. *)
val create : ?jobs:int -> unit -> t

(** Upper cap applied to [jobs] (oversubscribing domains degrades an
    OCaml 5 runtime rapidly). *)
val max_jobs : int

val jobs : t -> int

type domain_stats = {
  tasks_run : int;  (** tasks executed on this slot, across all runs *)
  busy_s : float;  (** wall seconds this slot spent inside task bodies *)
}

(** [stats t] — per-domain utilization, index 0 the calling domain,
    1.. the spawned workers.  Counters accumulate across every {!run}
    on this pool and are updated at chunk granularity by each slot's
    own domain; reading them while a job is in flight (the progress
    heartbeat does) is safe but may lag by one chunk.  Idle time is
    the caller's to derive: [jobs * elapsed_wall - Σ busy_s]. *)
val stats : t -> domain_stats array

(** [run t ~tasks body] executes [body i] for every [i] in
    [0 .. tasks-1], in parallel across the pool.  Returns when all tasks
    have completed.
    @raise Task_failed when any task raised (lowest index reported). *)
val run : t -> tasks:int -> (int -> unit) -> unit

(** [shutdown t] joins the worker domains.  Idempotent.  The pool must
    not be used afterwards. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] — create, apply, always shutdown. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a
