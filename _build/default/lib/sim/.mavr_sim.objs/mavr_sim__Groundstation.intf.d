lib/sim/groundstation.mli: Format
