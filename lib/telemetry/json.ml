type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ------------------------------------------------------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit b ~indent ~level v =
  let pad n = if indent > 0 then Buffer.add_string b (String.make (n * indent) ' ') in
  let sep_open c = Buffer.add_char b c; if indent > 0 then Buffer.add_char b '\n' in
  let sep_close c = (if indent > 0 then (Buffer.add_char b '\n'; pad level)); Buffer.add_char b c in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then Buffer.add_string b "null"
      else Buffer.add_string b (float_repr f)
  | String s -> escape b s
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      sep_open '[';
      List.iteri
        (fun i x ->
          if i > 0 then (Buffer.add_char b ','; if indent > 0 then Buffer.add_char b '\n');
          pad (level + 1);
          emit b ~indent ~level:(level + 1) x)
        xs;
      sep_close ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      sep_open '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then (Buffer.add_char b ','; if indent > 0 then Buffer.add_char b '\n');
          pad (level + 1);
          escape b k;
          Buffer.add_string b (if indent > 0 then ": " else ":");
          emit b ~indent ~level:(level + 1) x)
        kvs;
      sep_close '}'

let to_string ?(indent = 0) v =
  let b = Buffer.create 256 in
  emit b ~indent ~level:0 v;
  Buffer.contents b

(* ---- parsing -------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'u' ->
                   if !pos + 4 >= n then fail "bad \\u escape";
                   let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
                   (* Codepoints above latin-1 are not produced by this
                      library; clamp rather than implement UTF-8. *)
                   Buffer.add_char b (Char.chr (min code 0xFF));
                   pos := !pos + 5
               | _ -> fail "unknown escape");
            go ()
        | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
  | exception _ -> Error "parse error"

(* ---- accessors ------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let rec path keys v =
  match keys with
  | [] -> Some v
  | k :: rest -> ( match member k v with Some v' -> path rest v' | None -> None)

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function String s -> Some s | _ -> None
