let meta_base = 0x0080_0000

type meta = {
  exec_low_end : int;
  text_start : int;
  text_end : int;
  func_addrs : int list;
  funptr_locs : int list;
}

let magic = "MAVR1"

let meta_of_image (img : Image.t) =
  {
    exec_low_end = img.exec_low_end;
    text_start = img.text_start;
    text_end = img.text_end;
    func_addrs = List.map (fun (s : Image.symbol) -> s.addr) img.symbols;
    funptr_locs = img.funptr_locs;
  }

let add_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let add_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let to_blob m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  add_u32 buf m.exec_low_end;
  add_u32 buf m.text_start;
  add_u32 buf m.text_end;
  add_u16 buf (List.length m.func_addrs);
  List.iter (add_u32 buf) m.func_addrs;
  add_u16 buf (List.length m.funptr_locs);
  List.iter (add_u32 buf) m.funptr_locs;
  Buffer.contents buf

let of_blob s =
  let fail m = invalid_arg ("Symtab.of_blob: " ^ m) in
  let len = String.length s in
  let pos = ref 0 in
  let need n = if !pos + n > len then fail "truncated" in
  let u8 () =
    need 1;
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let u16 () = let lo = u8 () in lo lor (u8 () lsl 8) in
  let u32 () = let lo = u16 () in lo lor (u16 () lsl 16) in
  need (String.length magic);
  if String.sub s 0 (String.length magic) <> magic then fail "bad magic";
  pos := String.length magic;
  let exec_low_end = u32 () in
  let text_start = u32 () in
  let text_end = u32 () in
  let nfun = u16 () in
  let func_addrs = List.init nfun (fun _ -> u32 ()) in
  let nptr = u16 () in
  let funptr_locs = List.init nptr (fun _ -> u32 ()) in
  { exec_low_end; text_start; text_end; func_addrs; funptr_locs }

let to_hex img = Ihex.encode [ (meta_base, to_blob (meta_of_image img)); (0, img.code) ]

let of_hex text =
  let segments = Ihex.decode text in
  let blob =
    match List.find_opt (fun (a, _) -> a = meta_base) segments with
    | Some (_, b) -> b
    | None -> invalid_arg "Symtab.of_hex: no MAVR metadata segment"
  in
  let m = of_blob blob in
  let code = Ihex.flatten ~limit:meta_base segments in
  let rec symbols = function
    | [] -> []
    | [ a ] -> [ { Image.name = Printf.sprintf "f_%05x" a; addr = a; size = m.text_end - a; kind = Image.Func } ]
    | a :: (b :: _ as rest) ->
        { Image.name = Printf.sprintf "f_%05x" a; addr = a; size = b - a; kind = Image.Func }
        :: symbols rest
  in
  {
    Image.code;
    exec_low_end = m.exec_low_end;
    text_start = m.text_start;
    text_end = m.text_end;
    symbols = symbols m.func_addrs;
    funptr_locs = m.funptr_locs;
  }

let equal_meta a b = a = b
