(** Hierarchical span tracer with deterministic export.

    The third leg of the observability stack, next to {!Metrics}
    (aggregates merged at join) and {!Recorder} (bounded cycle-stamped
    ring): spans capture {e where wall/cpu time went}, as a tree of
    named intervals per lane, exported as Chrome [trace_event] JSON
    (loadable in Perfetto / [chrome://tracing]) or as streaming JSONL.

    Determinism contract (the same isolation discipline as
    [Campaign.Clock]): every lane lives in one of two time domains.
    [Host] lanes are stamped from a caller-supplied wall/cpu clock and
    carry nondeterministic timing; [Cycles] lanes are stamped with
    emulated-CPU cycle counts and are fully deterministic.  Exports can
    strip the Host timing fields ({!to_trace_event} [~strip_timing]),
    after which the document depends only on span {e content} — names,
    hierarchy, counts, args, cycle stamps — which is identical for any
    [--jobs], because lanes are exported in a sorted order independent
    of domain scheduling.  Tracing must never perturb the traced
    computation: the tracer touches no global state and draws no
    randomness.

    Concurrency contract: {!lane} may be called from any domain (it
    locks); {e appending} to a lane is single-writer — each campaign
    task owns its own lane, so the hot path takes no lock. *)

type clock = { wall : unit -> float; cpu : unit -> float }
(** Time sources in seconds.  [Campaign.Clock.tracer] supplies its
    ratcheted monotonic wall clock; tests supply synthetic clocks. *)

type time_domain = Host | Cycles

type tracer
type lane

(** [create ?clock ()] — a fresh tracer; its epoch is [clock.wall] at
    creation, so Host stamps are microseconds-since-tracer-start.  The
    default clock uses [Sys.time] for both sources (portable but
    CPU-time-as-wall degraded — campaign code passes a real clock). *)
val create : ?clock:clock -> unit -> tracer

(** [lane t ?sort ?domain name] finds or creates the lane [name].
    Idempotent per name; re-requesting an existing lane with a
    different [domain] raises [Invalid_argument].  [sort] (default 0)
    orders lanes in exports before the name tiebreak — campaign code
    passes the task index so trace rows follow task order, not
    domain-completion order. *)
val lane : tracer -> ?sort:int -> ?domain:time_domain -> string -> lane

val lane_name : lane -> string
val lane_domain : lane -> time_domain

(** {2 Host-domain spans}  ([Invalid_argument] on a [Cycles] lane) *)

(** [span lane ?args name f] runs [f ()] inside a span; the span closes
    (and records wall + cpu duration) even if [f] raises. *)
val span : lane -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

val begin_span : lane -> ?args:(string * Json.t) list -> string -> unit

(** Closes the innermost open span.  [Invalid_argument] when none is
    open. *)
val end_span : lane -> unit

val instant : lane -> ?args:(string * Json.t) list -> string -> unit

(** {2 Cycles-domain spans}  ([Invalid_argument] on a [Host] lane) *)

val cycle_instant : lane -> cycle:int -> ?args:(string * Json.t) list -> string -> unit

val cycle_span :
  lane -> begin_cycle:int -> end_cycle:int -> ?args:(string * Json.t) list -> string -> unit

(** [of_recorder lane events] folds a flight-recorder window (oldest
    first, as {!Recorder.events} returns it) into a [Cycles] lane:
    [Span_begin]/[Span_end] pairs matched by name become complete
    spans with cycle timestamps, [Point]s become instants carrying
    their payload as a ["value"] arg.  Unmatched ends and leftover
    begins degrade to instants ([name ^ ".end"] / [name ^ ".begin"])
    rather than being dropped. *)
val of_recorder : lane -> Recorder.event list -> unit

(** {2 Inspection & merge} *)

type view = {
  v_lane : string;
  v_domain : time_domain;
  v_name : string;
  v_instant : bool;  (** instant vs complete span *)
  v_depth : int;  (** nesting depth at emission *)
  v_args : (string * Json.t) list;
}

(** Timing-free event views in deterministic export order: lanes sorted
    by (domain, sort, name), events in per-lane emission order.  This
    is the content the jobs-invariance tests compare. *)
val views : tracer -> view list

(** Total events recorded (all lanes). *)
val event_count : tracer -> int

val lane_count : tracer -> int

(** [merge ~into src] appends every [src] lane's completed events into
    the same-named lane of [into] (created if absent).  Open spans are
    not transferred.  [Invalid_argument] on a domain mismatch. *)
val merge : into:tracer -> tracer -> unit

(** {2 Lane persistence}

    Checkpoint round-trip for completed lanes.  {!lane_to_json} drops
    Host wall-clock timing (ts/dur/cpu) — the persisted form is exactly
    the timing-stripped form that the jobs-invariance byte-diff
    compares — while Cycles lanes keep their exact integer stamps.
    {!lane_of_json} re-creates the lane (name, sort, domain) in a
    tracer and replays its events, so a resumed run's stripped trace is
    byte-identical to the uninterrupted run's.  Open spans are not
    persisted. *)

val lane_to_json : lane -> Json.t
val lane_of_json : tracer -> Json.t -> (lane, string) result

(** {2 Export} *)

(** Chrome [trace_event] document: [{"traceEvents": [...]}] with
    process/thread metadata — Host lanes under pid 1 (process
    ["host"]), Cycles lanes under pid 2 (process ["cycles"]).  With
    [~strip_timing:true] (default false) every Host-lane [ts]/[dur]/
    cpu field is zeroed, making the bytes jobs-invariant; Cycles
    stamps are deterministic and always kept. *)
val to_trace_event : ?strip_timing:bool -> tracer -> Json.t

(** One JSON object per line, in the same deterministic order as
    {!views}, each carrying a monotonic ["seq"].  Same
    [~strip_timing] semantics. *)
val to_jsonl : ?strip_timing:bool -> tracer -> string
