lib/mavr/patch.ml: Array Bytes Char List Mavr_avr Mavr_obj Printf Shuffle String
