(* Bench smoke checker, wired into `dune runtest`: the --quick --json
   document must parse with the in-tree codec and carry every headline
   key downstream tooling reads (BENCH_PR<n>.json consumers, EXPERIMENTS
   bookkeeping).  Exits nonzero on any miss. *)

module Json = Mavr_telemetry.Json

let required =
  [
    [ "schema" ];
    [ "quick" ];
    [ "table1"; "avg_functions" ];
    [ "table2"; "avg_startup_ms" ];
    [ "effectiveness"; "seeds" ];
    [ "effectiveness"; "succeeded" ];
    [ "decode_cache"; "cached_insn_per_s" ];
    [ "decode_cache"; "speedup" ];
    [ "decode_cache"; "arch_state_identical" ];
    [ "decode_cache"; "wall_s" ];
    [ "decode_cache"; "cpu_s" ];
    [ "telemetry_overhead"; "disabled_insn_per_s" ];
    [ "telemetry_overhead"; "enabled_insn_per_s" ];
    [ "telemetry_overhead"; "enabled_overhead_pct" ];
    [ "telemetry_overhead"; "wall_s" ];
    [ "telemetry_overhead"; "cpu_s" ];
    [ "campaign"; "host_domains" ];
    [ "campaign"; "census_scaling" ];
    [ "campaign"; "grid_scaling" ];
    [ "campaign"; "randomize_scaling" ];
    [ "static_analysis"; "arduplane"; "coverage_pct" ];
    [ "static_analysis"; "arduplane"; "lint_findings" ];
    [ "static_analysis"; "arduplane"; "lint_findings_randomized" ];
    [ "static_analysis"; "census_base_gadgets" ];
    [ "static_analysis"; "census_feasible_layouts" ];
    [ "fault_robustness"; "profile" ];
    [ "fault_robustness"; "levels" ];
    [ "fault_robustness"; "mavr_takeovers" ];
    [ "fault_robustness"; "identical_j1_j2" ];
    [ "fault_robustness"; "wall_s" ];
    [ "fault_robustness"; "cpu_s" ];
  ]

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: check.exe BENCH.json";
    exit 2
  end;
  let path = Sys.argv.(1) in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.of_string s with
  | Error e ->
      Printf.eprintf "bench smoke: %s does not parse: %s\n" path e;
      exit 1
  | Ok doc ->
      let missing = List.filter (fun p -> Json.path p doc = None) required in
      List.iter
        (fun p -> Printf.eprintf "bench smoke: missing key %s\n" (String.concat "." p))
        missing;
      if missing <> [] then exit 1;
      (* The campaign scaling rows carry the determinism contract into the
         committed artifact: every row must time both clocks and must have
         reproduced the jobs=1 document byte-for-byte. *)
      let scaling_ok =
        List.for_all
          (fun section ->
            match Json.path [ "campaign"; section ] doc with
            | Some (Json.List rows) when rows <> [] ->
                List.for_all
                  (fun row ->
                    List.for_all
                      (fun k -> Json.member k row <> None)
                      [ "jobs"; "wall_s"; "cpu_s"; "speedup"; "items_per_s" ]
                    && Json.member "identical" row = Some (Json.Bool true)
                    ||
                    (Printf.eprintf
                       "bench smoke: bad campaign.%s row: %s\n" section (Json.to_string row);
                     false))
                  rows
            | _ ->
                Printf.eprintf "bench smoke: campaign.%s is not a non-empty list\n" section;
                false)
          [ "census_scaling"; "grid_scaling"; "randomize_scaling" ]
      in
      if not scaling_ok then exit 1;
      (* The fault sweep's own contract: the faulted campaign document is
         jobs-invariant, MAVR concedes nothing at any intensity, and every
         level row carries its detection/false-alarm numbers. *)
      let fault_ok =
        Json.path [ "fault_robustness"; "identical_j1_j2" ] doc = Some (Json.Bool true)
        || (prerr_endline "bench smoke: fault_robustness not jobs-invariant"; false)
      in
      let fault_ok =
        fault_ok
        && (Json.path [ "fault_robustness"; "mavr_takeovers" ] doc = Some (Json.Int 0)
           || (prerr_endline "bench smoke: fault_robustness reports MAVR takeovers"; false))
      in
      let fault_ok =
        fault_ok
        &&
        match Json.path [ "fault_robustness"; "levels" ] doc with
        | Some (Json.List rows) when rows <> [] ->
            List.for_all
              (fun row ->
                List.for_all
                  (fun k -> Json.member k row <> None)
                  [
                    "level"; "mavr_takeovers"; "mavr_detections"; "mavr_false_alarm_rate";
                    "undefended_false_alarm_rate";
                  ]
                ||
                (Printf.eprintf "bench smoke: bad fault_robustness level row: %s\n"
                   (Json.to_string row);
                 false))
              rows
        | _ ->
            prerr_endline "bench smoke: fault_robustness.levels is not a non-empty list";
            false
      in
      if not fault_ok then exit 1;
      (match Option.bind (Json.path [ "schema" ] doc) Json.to_str with
      | Some "mavr-bench" -> ()
      | Some other ->
          Printf.eprintf "bench smoke: unexpected schema %S\n" other;
          exit 1
      | None ->
          prerr_endline "bench smoke: schema is not a string";
          exit 1);
      Printf.printf "bench smoke: %s OK (%d keys present)\n" path (List.length required)
