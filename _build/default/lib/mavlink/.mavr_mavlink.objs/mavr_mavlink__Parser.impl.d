lib/mavlink/parser.ml: Buffer Char Frame List Messages String
