lib/mavr/lifetime.ml:
