let data_vma = 0x200
let vtable_entries = 8
let vtable_vma = data_vma

let stage = 0x300
let stage_len = 255

let st_state = 0x480
let st_len = 0x481
let st_idx = 0x482
let st_msgid = 0x483
let rxcrc_lo = 0x484
let rxcrc_hi = 0x485
let txcrc_lo = 0x486
let txcrc_hi = 0x487
let txseq = 0x488
let loop_lo = 0x489
let loop_hi = 0x48A
let gcs_beat = 0x48B
let gyro_val = 0x48C
let gyro_cfg = 0x48E
let tick = 0x490

let telem = 0x500
let telem_len = 26
let telem_gyro_off = 14
let telem_accel_off = 8
let param_area = 0x540
let cmd_area = 0x560

let scratch i = 0x600 + (8 * (i mod 256))

(* The stack starts 128 bytes below RAMEND.  Real ArduPlane enters the
   MAVLink handler through a much deeper call chain than our synthetic
   runtime; reserving this region models that depth, so attacks that
   consume caller stack above the vulnerable frame (paper attack V1)
   stay inside physical SRAM. *)
let stack_top = 0x217F
let free_region = 0x1800
let free_region_len = 0x800

let vuln_buffer_len = 64
let vuln_frame_size = 66
