lib/sim/scenario.mli: Dynamics Format Groundstation Mavr_avr Mavr_core Mavr_obj Sensors
