lib/sim/sensors.ml: Dynamics Float Mavr_avr Mavr_prng
