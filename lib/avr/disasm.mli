(** Linear-sweep disassembler over flash images.

    This is the view an attacker has of the {e unprotected} binary (threat
    model, §IV-A): a total decode of program memory, used both by the
    gadget finder and for human-readable listings like Figs. 4 and 5. *)

type line = {
  byte_addr : int;  (** address of the instruction, in bytes *)
  insn : Isa.t;
  size_bytes : int;
}

(** [sweep code ~pos ~len] decodes [len] bytes starting at byte offset
    [pos] (both default to the whole string). *)
val sweep : ?pos:int -> ?len:int -> string -> line list

(** [decode_words code ~pos ~len] decodes at {e every} word (2-byte)
    offset of the region, not just linear-sweep boundaries: element [i] is
    the decode at byte [pos + 2*i] with its size in bytes.  Consecutive
    elements therefore describe {e overlapping} decodings wherever a
    two-word instruction occurs — the complete attacker's view used by the
    mid-instruction gadget scan, and the static cousin of the CPU's
    per-word predecode cache. *)
val decode_words : ?pos:int -> ?len:int -> string -> (Isa.t * int) array

(** [listing code ~pos ~len] pretty-prints a region, one instruction per
    line, in the objdump-like format of the paper's gadget figures. *)
val listing : ?pos:int -> ?len:int -> string -> string

val pp_line : Format.formatter -> line -> unit
