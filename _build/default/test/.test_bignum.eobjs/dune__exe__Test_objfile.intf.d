test/test_objfile.mli:
