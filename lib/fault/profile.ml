type level = {
  name : string;
  downlink : Channel.params;
  uplink : Channel.params;
  seu : Seu.params;
  reflash : Reflash.params;
}

let level_off =
  {
    name = "off";
    downlink = Channel.clean;
    uplink = Channel.clean;
    seu = Seu.off;
    reflash = Reflash.off;
  }

let level_is_off l =
  Channel.is_clean l.downlink && Channel.is_clean l.uplink && Seu.is_off l.seu
  && Reflash.is_off l.reflash

type t = { name : string; levels : level array }

(* Channel rates are per byte (per chunk for burst/jitter); a 900 ms
   trial moves a few KB of telemetry, so "mild" is a handful of flipped
   bits per trial and "severe" is ~1% byte error — past the point where
   the GCS Link_corruption alarm must fire while Unexpected_reboot must
   not. *)
let chan_mild =
  {
    Channel.bit_flip_ppm = 200;
    drop_ppm = 100;
    dup_ppm = 50;
    burst_ppm = 2_000;
    burst_len_max = 4;
    jitter_max_ticks = 1;
  }

let chan_moderate =
  {
    Channel.bit_flip_ppm = 2_000;
    drop_ppm = 1_000;
    dup_ppm = 500;
    burst_ppm = 20_000;
    burst_len_max = 8;
    jitter_max_ticks = 2;
  }

let chan_severe =
  {
    Channel.bit_flip_ppm = 10_000;
    drop_ppm = 5_000;
    dup_ppm = 2_000;
    burst_ppm = 100_000;
    burst_len_max = 16;
    jitter_max_ticks = 4;
  }

(* SEU rates are per tick (1 ms): "mild" is sub-one expected upset per
   trial, "severe" is tens of SRAM flips plus a few flash flips — enough
   to crash firmware occasionally and exercise the recovery reflash. *)
let seu_mild = { Seu.sram_flip_ppm = 500; flash_flip_ppm = 0 }
let seu_moderate = { Seu.sram_flip_ppm = 5_000; flash_flip_ppm = 500 }
let seu_severe = { Seu.sram_flip_ppm = 20_000; flash_flip_ppm = 5_000 }

(* Reflash corruption is per streamed page; an application image is a
   few hundred pages, so "severe" corrupts most sessions at least once
   and the verify-and-retry path carries the load. *)
let reflash_mild = { Reflash.page_corrupt_ppm = 200; max_retries = 3 }
let reflash_moderate = { Reflash.page_corrupt_ppm = 2_000; max_retries = 3 }
let reflash_severe = { Reflash.page_corrupt_ppm = 10_000; max_retries = 3 }

let none = { name = "none"; levels = [| level_off |] }

let lossy =
  let lvl name c = { level_off with name; downlink = c; uplink = c } in
  {
    name = "lossy";
    levels =
      [|
        level_off; lvl "mild" chan_mild; lvl "moderate" chan_moderate; lvl "severe" chan_severe;
      |];
  }

let seu =
  let lvl name s = { level_off with name; seu = s } in
  {
    name = "seu";
    levels =
      [| level_off; lvl "mild" seu_mild; lvl "moderate" seu_moderate; lvl "severe" seu_severe |];
  }

let stress =
  let lvl name c s r = { name; downlink = c; uplink = c; seu = s; reflash = r } in
  {
    name = "stress";
    levels =
      [|
        level_off;
        lvl "mild" chan_mild seu_mild reflash_mild;
        lvl "moderate" chan_moderate seu_moderate reflash_moderate;
        lvl "severe" chan_severe seu_severe reflash_severe;
      |];
  }

let all = [ none; lossy; seu; stress ]
let names = List.map (fun p -> p.name) all

let of_string s =
  match List.find_opt (fun p -> p.name = s) all with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown fault profile %S (expected one of %s)" s
           (String.concat ", " names))
