(** Wall-clock vs CPU-clock, kept honest.

    Every throughput/latency figure in this repository used to be derived
    from [Sys.time ()], which is process {e CPU} time.  That already
    conflates CPU with wall time on one domain, and becomes outright
    wrong with parallelism: CPU time {e sums} across domains, so a
    perfectly scaling campaign would report its throughput {e dropping}
    as domains are added.  Rates must divide by {!wall}; {!cpu} exists
    only for explicitly labeled [cpu_s] bookkeeping (utilization =
    cpu_s / wall_s approaches the domain count when scaling is good). *)

(** [wall ()] — wall-clock seconds from an arbitrary origin, guaranteed
    monotonically non-decreasing across all domains (system clock steps
    backwards are ratcheted away). *)
val wall : unit -> float

(** [cpu ()] — process CPU seconds ([Sys.time]); sums across domains. *)
val cpu : unit -> float

type span = { wall_s : float; cpu_s : float }

(** [time f] runs [f ()] and measures it: [(result, span)]. *)
val time : (unit -> 'a) -> 'a * span

(** [rate count span] — events per wall-clock second, guarded against a
    zero-length span. *)
val rate : float -> span -> float

val span_to_json_fields : span -> (string * Mavr_telemetry.Json.t) list

(** [tracer ()] — a {!Mavr_telemetry.Span} tracer driven by this
    module's ratcheted {!wall} / {!cpu} clocks (the telemetry library
    itself has no [unix] dependency, so the clock is injected here). *)
val tracer : unit -> Mavr_telemetry.Span.tracer
