(* SplitMix64 (Steele, Lea, Flood 2014), computed in OCaml's 63-bit ints.
   The top bit of the 64-bit stream is lost, which is fine for our use. *)

type t = { mutable state : int }

let create ~seed = { state = seed land max_int }

let mask = max_int (* 63 bits *)

let next t =
  t.state <- (t.state + 0x1ed0e5a2613b9b9b (* 0x9E3779B97F4A7C15 land max_int *)) land mask;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 land mask in
  let z = (z lxor (z lsr 27)) * 0x14cab25e62ef6eb5 land mask in
  (z lxor (z lsr 31)) land mask

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  next t mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Splitmix.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = next t land 1 = 1

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Splitmix.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = create ~seed:(next t lxor 0x5851f42d4c957f2d)
