(* End-to-end flows spanning every layer: firmware generation, the HEX
   provisioning path, the master processor, the attacks, the defense, and
   the closed-loop simulation — the experiments of §VII in miniature. *)

module Cpu = Mavr_avr.Cpu
module Image = Mavr_obj.Image
module Rop = Mavr_core.Rop
module Master = Mavr_core.Master
module Randomize = Mavr_core.Randomize
module Layout = Mavr_firmware.Layout
module Sc = Mavr_sim.Scenario

let gyro_cfg cpu =
  Cpu.data_peek cpu Layout.gyro_cfg lor (Cpu.data_peek cpu (Layout.gyro_cfg + 1) lsl 8)

let test_full_provisioning_path () =
  (* build -> preprocess -> HEX -> external flash -> master boot ->
     randomized app -> equivalent behaviour. *)
  let b = Helpers.build_mavr () in
  let m = Master.create () in
  Master.provision m b.image;
  let app = Cpu.create () in
  Master.boot m ~app;
  Cpu.io_poke app Mavr_avr.Device.Io.gyro_lo 0x21;
  Cpu.io_poke app Mavr_avr.Device.Io.gyro_hi 0x43;
  ignore (Cpu.run app ~max_cycles:300_000);
  let _, frames, stats = Helpers.telemetry app ~cycles:300_000 in
  Alcotest.(check int) "clean telemetry through full path" 0 stats.crc_errors;
  Alcotest.(check bool) "frames" true (List.length frames > 3)

let test_effectiveness_experiment () =
  (* §VII-A in miniature: the attack succeeds on the unprotected binary
     and fails on every randomized instance. *)
  let b, ti, obs = Helpers.attack_target () in
  let attack = Rop.v2_stealthy ti obs ~writes:[ Rop.write_u16 obs ~addr:Layout.gyro_cfg ~value:0x4141 ~neighbour:0 ] in
  let run image =
    let cpu = Helpers.boot image in
    List.iter (Cpu.uart_send cpu) attack;
    ignore (Cpu.run cpu ~max_cycles:2_500_000);
    gyro_cfg cpu = 0x4141
  in
  Alcotest.(check bool) "succeeds unprotected" true (run b.image);
  let successes = ref 0 in
  for seed = 1 to 12 do
    if run (Randomize.randomize ~seed b.image) then incr successes
  done;
  Alcotest.(check int) "0 of 12 randomized instances fall" 0 !successes

let test_rerandomization_defeats_repeat_attacks () =
  (* After detection the master re-randomizes, so even an attacker who
     somehow learned the new layout's failure gets a fresh layout. *)
  let b, ti, obs = Helpers.attack_target () in
  ignore b;
  let m = Master.create () in
  Master.provision m (Helpers.build_mavr ()).image;
  let app = Cpu.create () in
  Master.boot m ~app;
  let layout_before = (Master.current_image m).Image.code in
  ignore (Cpu.run app ~max_cycles:60_000);
  ignore obs;
  (* A wrong gadget guess: the return address leaves flash on any layout. *)
  List.iter (Cpu.uart_send app) (Rop.crash_probe ti);
  ignore (Master.supervise m ~app ~cycles:3_000_000);
  Alcotest.(check bool) "detected" true (Master.attacks_detected m >= 1);
  Alcotest.(check bool) "layout changed after detection" true
    ((Master.current_image m).Image.code <> layout_before);
  Alcotest.(check bool) "app recovered" true (Cpu.halted app = None && Cpu.watchdog_feeds app > 0)

let test_flash_wear_accounting () =
  let m = Master.create () in
  Master.provision m (Helpers.build_mavr ()).image;
  let app = Cpu.create () in
  for _ = 1 to 5 do
    Master.boot m ~app
  done;
  Alcotest.(check int) "five programming cycles" 5 (Master.reflashes m);
  (* 10,000-cycle endurance: the default every-boot policy would allow
     10,000 boots; the §V-C schedule trades frequency for lifetime. *)
  let endurance = Mavr_avr.Device.atmega2560.flash_endurance in
  Alcotest.(check bool) "endurance budget meaningful" true (Master.reflashes m < endurance)

let test_fig6_stack_progression () =
  (* Reproduce the shape of Fig. 6: snapshots before/during/after the
     stealthy attack show damage and then byte-exact repair.  The frame's
     pristine contents are the dry-run observation [obs.saved_bytes]; the
     repair check samples at the instant of the clean return (afterwards
     the region is legitimately reused by other call frames). *)
  let b, ti, obs = Helpers.attack_target () in
  let cpu = Helpers.boot b.image in
  let window () = Cpu.stack_slice cpu ~pos:(obs.s0 - 5) ~len:6 in
  List.iter (Cpu.uart_send cpu)
    (Rop.v2_stealthy ti obs ~writes:[ Rop.write_u16 obs ~addr:Layout.gyro_cfg ~value:7 ~neighbour:0 ]);
  (* Run until the trigger's copy has smashed the frame (PC at teardown). *)
  (match
     Cpu.run_until cpu ~max_cycles:3_000_000 (fun c ->
         Cpu.pc_byte_addr c = ti.gadgets.Mavr_core.Gadget.stk_move
         && Cpu.data_peek c (obs.s0 - 5) <> Char.code obs.saved_bytes.[0])
   with
  | `Pred -> ()
  | _ -> Alcotest.fail "never observed the smashed frame");
  let dirty = window () in
  Alcotest.(check bool) "frame was smashed" true (dirty <> obs.saved_bytes);
  let byte i = Char.code obs.saved_bytes.[i] in
  let ret_target = ((byte 3 lsl 16) lor (byte 4 lsl 8) lor byte 5) * 2 in
  (match Cpu.run_until cpu ~max_cycles:3_000_000 (fun c -> Cpu.pc_byte_addr c = ret_target) with
  | `Pred -> ()
  | _ -> Alcotest.fail "clean return never happened");
  Alcotest.(check string) "frame repaired byte-exactly" obs.saved_bytes (window ());
  ignore (Cpu.run cpu ~max_cycles:500_000);
  Alcotest.(check int) "payload executed" 7 (gyro_cfg cpu)

let test_defended_flight_under_attack_barrage () =
  (* Sustained attack volleys against a defended UAV: none succeed, the
     UAV keeps flying, every crash is recovered. *)
  let b, ti, obs = Helpers.attack_target () in
  ignore b;
  let config = { Master.default_config with watchdog_window_cycles = 20_000 } in
  let s = Sc.create ~image:(Helpers.build_mavr ()).image (Sc.Mavr config) in
  Sc.run s ~ms:300.0;
  ignore obs;
  for _ = 1 to 3 do
    Sc.inject s (Rop.crash_probe ti);
    Sc.run s ~ms:1200.0
  done;
  let r = Sc.report s in
  Alcotest.(check bool) "multiple detections" true (r.master_detections >= 2);
  Alcotest.(check bool) "flying at the end" true (not r.app_halted);
  let cfg = gyro_cfg (Sc.app s) in
  Alcotest.(check bool) "never taken over" false (cfg = 0x4141)

let test_software_only_defense_is_fragile () =
  (* §VIII-A: a software-only deployment ships one fixed permutation and
     has no recovery path — a failed attack leaves the autopilot dead,
     which in flight means losing the vehicle. *)
  let b, ti, obs = Helpers.attack_target () in
  let fixed = Randomize.randomize ~seed:77 b.image in
  let cpu = Helpers.boot fixed in
  ignore obs;
  List.iter (Cpu.uart_send cpu) (Rop.crash_probe ti);
  (match Cpu.run cpu ~max_cycles:3_000_000 with
  | `Halted _ -> ()
  | `Budget_exhausted -> Alcotest.fail "expected the fixed-layout victim to crash");
  (* Nothing resets it: it is still halted arbitrarily later. *)
  ignore (Cpu.run cpu ~max_cycles:1_000_000);
  Alcotest.(check bool) "no recovery without the master" true (Cpu.halted cpu <> None)

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "full provisioning path" `Quick test_full_provisioning_path;
          Alcotest.test_case "effectiveness (§VII-A)" `Slow test_effectiveness_experiment;
          Alcotest.test_case "re-randomization on detection" `Quick
            test_rerandomization_defeats_repeat_attacks;
          Alcotest.test_case "flash wear accounting" `Quick test_flash_wear_accounting;
          Alcotest.test_case "Fig.6 stack progression" `Quick test_fig6_stack_progression;
          Alcotest.test_case "defended flight under barrage" `Slow
            test_defended_flight_under_attack_barrage;
          Alcotest.test_case "software-only defense fragile (§VIII-A)" `Quick
            test_software_only_defense_is_fragile;
        ] );
    ]
