module Json = Mavr_telemetry.Json

type t = { target : float; z : float; min_trials : int; batch : int }

let create ?(z = 1.96) ?(min_trials = 8) ?(batch = 4) ~target () =
  if not (target > 0.0 && target < 1.0) then
    invalid_arg "Campaign.Early_stop.create: target halfwidth must be in (0, 1)";
  if z <= 0.0 then invalid_arg "Campaign.Early_stop.create: z must be positive";
  if min_trials < 1 then invalid_arg "Campaign.Early_stop.create: min_trials must be >= 1";
  if batch < 1 then invalid_arg "Campaign.Early_stop.create: batch must be >= 1";
  { target; z; min_trials; batch }

let target t = t.target
let z t = t.z
let min_trials t = t.min_trials
let batch t = t.batch

(* Wilson score interval for a binomial proportion — unlike the Wald
   interval it never collapses to zero width at p-hat ∈ {0, 1}, which is
   exactly where detection (≈1) and false-alarm (≈0) rates live, so the
   stop rule stays honest at the extremes. *)
let wilson ~z ~n ~k =
  if n <= 0 then (0.0, 1.0)
  else begin
    let nf = float_of_int n in
    let p = float_of_int k /. nf in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. nf) in
    let center = (p +. (z2 /. (2.0 *. nf))) /. denom in
    let half = z /. denom *. sqrt ((p *. (1.0 -. p) /. nf) +. (z2 /. (4.0 *. nf *. nf))) in
    (max 0.0 (center -. half), min 1.0 (center +. half))
  end

let halfwidth ~z ~n ~k =
  let lo, hi = wilson ~z ~n ~k in
  (hi -. lo) /. 2.0

let should_stop t ~n ~k = n >= t.min_trials && halfwidth ~z:t.z ~n ~k <= t.target

let to_json_fields t =
  [
    ("target_halfwidth", Json.Float t.target);
    ("z", Json.Float t.z);
    ("min_trials", Json.Int t.min_trials);
    ("batch", Json.Int t.batch);
  ]
