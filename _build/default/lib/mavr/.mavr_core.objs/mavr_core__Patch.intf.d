lib/mavr/patch.mli: Mavr_obj Shuffle
