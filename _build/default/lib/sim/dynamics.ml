type state = {
  time_s : float;
  roll : float;
  pitch : float;
  yaw : float;
  roll_rate : float;
  pitch_rate : float;
  yaw_rate : float;
  altitude_m : float;
  airspeed_ms : float;
}

let initial =
  {
    time_s = 0.0;
    roll = 0.0;
    pitch = 0.02;
    yaw = 0.0;
    roll_rate = 0.0;
    pitch_rate = 0.0;
    yaw_rate = 0.0;
    altitude_m = 120.0;
    airspeed_ms = 14.0;
  }

(* A gentle banked circle: the commanded roll follows a slow sinusoid,
   attitude lags with a first-order response, yaw follows the bank. *)
let step s ~dt =
  let commanded_roll = 0.25 *. sin (s.time_s /. 7.0) in
  let tau = 0.8 in
  let roll_rate = (commanded_roll -. s.roll) /. tau in
  let pitch_rate = (0.02 -. s.pitch) /. tau in
  let yaw_rate = 9.81 /. s.airspeed_ms *. tan s.roll in
  {
    time_s = s.time_s +. dt;
    roll = s.roll +. (roll_rate *. dt);
    pitch = s.pitch +. (pitch_rate *. dt);
    yaw = s.yaw +. (yaw_rate *. dt);
    roll_rate;
    pitch_rate;
    yaw_rate;
    altitude_m = s.altitude_m +. (2.0 *. s.pitch *. s.airspeed_ms *. dt);
    airspeed_ms = s.airspeed_ms;
  }

let gyro_x_raw s =
  let raw = int_of_float (Float.round (s.roll_rate *. 1000.0)) in
  let clamped = max (-32768) (min 32767 raw) in
  clamped land 0xFFFF

let pp fmt s =
  Format.fprintf fmt "t=%.1fs roll=%.3f pitch=%.3f yaw=%.3f alt=%.1fm" s.time_s s.roll s.pitch
    s.yaw s.altitude_m
