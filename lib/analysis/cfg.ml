module Isa = Mavr_avr.Isa
module Decode = Mavr_avr.Decode
module Device = Mavr_avr.Device
module Image = Mavr_obj.Image
module Json = Mavr_telemetry.Json

type provenance = Vector of int | Symbol of string | Funptr of int

type t = {
  image : Image.t;
  reachable : (int, Isa.t * int) Hashtbl.t;
  sweep : (int, Isa.t * int) Hashtbl.t;
  entries : (int * provenance) list;
  leaders : (int, unit) Hashtbl.t;
}

let image t = t.image
let entries t = t.entries

let exec_regions (img : Image.t) = [ (0, img.exec_low_end); (img.text_start, img.text_end) ]

let in_exec img addr =
  addr land 1 = 0 && List.exists (fun (s, e) -> addr >= s && addr < e) (exec_regions img)

(* A stored function pointer is a 16-bit little-endian *word* address. *)
let funptr_target (img : Image.t) loc =
  if loc >= 0 && loc + 1 < String.length img.code then
    Some (2 * (Char.code img.code.[loc] lor (Char.code img.code.[loc + 1] lsl 8)))
  else None

let successors ~code addr insn size =
  match insn with
  | Isa.Ret | Isa.Reti | Isa.Ijmp | Isa.Break | Isa.Data _ -> []
  | Isa.Jmp a -> [ 2 * a ]
  | Isa.Rjmp off -> [ addr + size + (2 * off) ]
  | Isa.Call a -> [ 2 * a; addr + size ]
  | Isa.Rcall off -> [ addr + size + (2 * off); addr + size ]
  | Isa.Brbs (_, off) | Isa.Brbc (_, off) -> [ addr + size + (2 * off); addr + size ]
  | Isa.Cpse _ | Isa.Sbic _ | Isa.Sbis _ | Isa.Sbrc _ | Isa.Sbrs _ ->
      (* The skip distance depends on the size of the next instruction,
         exactly as the CPU computes it. *)
      let _, nsize = Decode.decode_bytes code (addr + size) in
      [ addr + size; addr + size + nsize ]
  | _ -> [ addr + size ]

(* Non-fallthrough successors start basic blocks. *)
let branch_targets addr insn size =
  match insn with
  | Isa.Jmp a -> [ 2 * a ]
  | Isa.Rjmp off -> [ addr + size + (2 * off) ]
  | Isa.Call a -> [ 2 * a ]
  | Isa.Rcall off -> [ addr + size + (2 * off) ]
  | Isa.Brbs (_, off) | Isa.Brbc (_, off) -> [ addr + size + (2 * off) ]
  | _ -> []

let seed_list (img : Image.t) =
  let vectors =
    List.init Device.Vector.count (fun n -> (Device.Vector.byte_addr n, Vector n))
  in
  let symbols = List.map (fun (s : Image.symbol) -> (s.addr, Symbol s.name)) img.symbols in
  let funptrs =
    List.filter_map
      (fun loc -> Option.map (fun t -> (t, Funptr loc)) (funptr_target img loc))
      img.funptr_locs
  in
  List.sort compare (vectors @ symbols @ funptrs)

let recover (img : Image.t) =
  let code = img.Image.code in
  let reachable = Hashtbl.create 4096 in
  let leaders = Hashtbl.create 512 in
  let entries = List.filter (fun (a, _) -> in_exec img a) (seed_list img) in
  let work = Queue.create () in
  List.iter
    (fun (a, _) ->
      Hashtbl.replace leaders a ();
      Queue.add a work)
    entries;
  while not (Queue.is_empty work) do
    let addr = Queue.pop work in
    if (not (Hashtbl.mem reachable addr)) && in_exec img addr then begin
      let insn, size = Decode.decode_bytes code addr in
      Hashtbl.replace reachable addr (insn, size);
      List.iter (fun t -> Hashtbl.replace leaders t ()) (branch_targets addr insn size);
      List.iter
        (fun t -> if in_exec img t && not (Hashtbl.mem reachable t) then Queue.add t work)
        (successors ~code addr insn size)
    end
  done;
  (* Linear-sweep fallback over the gaps descent never reached. *)
  let sweep = Hashtbl.create 256 in
  let covered = Bytes.make (String.length code) '\x00' in
  Hashtbl.iter
    (fun addr (_, size) ->
      for b = addr to min (addr + size - 1) (Bytes.length covered - 1) do
        Bytes.set covered b '\x01'
      done)
    reachable;
  List.iter
    (fun (rs, re) ->
      let pos = ref rs in
      while !pos < re do
        if Bytes.get covered !pos = '\x00' then begin
          (* A maximal unreached gap, word-aligned by construction of the
             regions and instruction sizes. *)
          let gap_start = !pos + (!pos land 1) in
          let gap_end = ref gap_start in
          while !gap_end < re && Bytes.get covered !gap_end = '\x00' do
            incr gap_end
          done;
          Decode.fold_program code ~pos:gap_start ~len:(!gap_end - gap_start)
            (fun () a i ->
              let _, size = Decode.decode_bytes code a in
              Hashtbl.replace sweep a (i, size))
            ();
          pos := !gap_end
        end
        else incr pos
      done)
    (exec_regions img);
  { image = img; reachable; sweep; entries; leaders }

let insn_at t addr = Hashtbl.find_opt t.reachable addr
let sweep_insn_at t addr = Hashtbl.find_opt t.sweep addr
let is_reachable t addr = Hashtbl.mem t.reachable addr

let sorted_reachable t =
  let addrs = Hashtbl.fold (fun a _ acc -> a :: acc) t.reachable [] in
  List.sort compare addrs

let reachable_addrs = sorted_reachable

let block_starts t =
  let starts = Hashtbl.fold (fun a _ acc -> if Hashtbl.mem t.reachable a then a :: acc else acc) t.leaders [] in
  List.sort compare starts

let block_start_words t = List.map (fun a -> a / 2) (block_starts t)

let iter_reachable t f =
  List.iter
    (fun a ->
      let insn, size = Hashtbl.find t.reachable a in
      f a insn size)
    (sorted_reachable t)

type stats = {
  entries : int;
  reachable_insns : int;
  reachable_bytes : int;
  exec_bytes : int;
  coverage_pct : float;
  blocks : int;
  sweep_insns : int;
  sweep_bytes : int;
}

let stats t =
  let code = t.image.Image.code in
  let covered = Bytes.make (String.length code) '\x00' in
  Hashtbl.iter
    (fun addr (_, size) ->
      for b = addr to min (addr + size - 1) (Bytes.length covered - 1) do
        Bytes.set covered b '\x01'
      done)
    t.reachable;
  let reachable_bytes = ref 0 and exec_bytes = ref 0 in
  List.iter
    (fun (rs, re) ->
      exec_bytes := !exec_bytes + (re - rs);
      for b = rs to re - 1 do
        if Bytes.get covered b = '\x01' then incr reachable_bytes
      done)
    (exec_regions t.image);
  (* A block starts at a leader, or wherever the previous reachable
     instruction does not fall through to the address. *)
  let blocks = ref 0 in
  let prev : (int * Isa.t * int) option ref = ref None in
  List.iter
    (fun a ->
      let insn, size = Hashtbl.find t.reachable a in
      let flows_in =
        match !prev with
        | Some (pa, pi, ps) when pa + ps = a ->
            List.mem a (successors ~code pa pi ps)
        | _ -> false
      in
      if Hashtbl.mem t.leaders a || not flows_in then incr blocks;
      prev := Some (a, insn, size))
    (sorted_reachable t);
  let sweep_insns = Hashtbl.length t.sweep in
  let sweep_bytes = Hashtbl.fold (fun _ (_, size) acc -> acc + size) t.sweep 0 in
  {
    entries = List.length t.entries;
    reachable_insns = Hashtbl.length t.reachable;
    reachable_bytes = !reachable_bytes;
    exec_bytes = !exec_bytes;
    coverage_pct =
      (if !exec_bytes = 0 then 0.0
       else 100.0 *. float_of_int !reachable_bytes /. float_of_int !exec_bytes);
    blocks = !blocks;
    sweep_insns;
    sweep_bytes;
  }

let stats_to_json s =
  Json.Obj
    [
      ("entries", Json.Int s.entries);
      ("reachable_insns", Json.Int s.reachable_insns);
      ("reachable_bytes", Json.Int s.reachable_bytes);
      ("exec_bytes", Json.Int s.exec_bytes);
      ("coverage_pct", Json.Float s.coverage_pct);
      ("blocks", Json.Int s.blocks);
      ("sweep_insns", Json.Int s.sweep_insns);
      ("sweep_bytes", Json.Int s.sweep_bytes);
    ]

let pp_stats fmt s =
  Format.fprintf fmt
    "cfg: %d entries, %d insns / %d blocks, %d/%d bytes reachable (%.1f%%), sweep fallback %d insns (%d B)"
    s.entries s.reachable_insns s.blocks s.reachable_bytes s.exec_bytes s.coverage_pct
    s.sweep_insns s.sweep_bytes
