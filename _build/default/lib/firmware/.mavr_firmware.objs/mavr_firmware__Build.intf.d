lib/firmware/build.mli: Mavr_asm Mavr_obj Profile
