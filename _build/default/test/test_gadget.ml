module Gadget = Mavr_core.Gadget
module Isa = Mavr_avr.Isa
module Image = Mavr_obj.Image

let image () = (Helpers.build_mavr ()).image

let test_scan_finds_gadgets () =
  let gs = Gadget.scan (image ()) in
  Alcotest.(check bool) "hundreds of gadgets" true (List.length gs > 100);
  List.iter
    (fun (g : Gadget.t) ->
      (* Every gadget ends in ret and starts in an executable region. *)
      match List.rev g.insns with
      | Isa.Ret :: _ -> ()
      | _ -> Alcotest.failf "gadget at 0x%x does not end in ret" g.byte_addr)
    gs

let test_gadget_bodies_straightline () =
  List.iter
    (fun (g : Gadget.t) ->
      let body = List.filteri (fun i _ -> i < List.length g.insns - 1) g.insns in
      if
        List.exists
          (function
            | Isa.Ret | Isa.Jmp _ | Isa.Rjmp _ | Isa.Call _ | Isa.Rcall _ | Isa.Data _ -> true
            | _ -> false)
          body
      then Alcotest.failf "gadget at 0x%x has a control transfer mid-body" g.byte_addr)
    (Gadget.scan (image ()))

let test_classification () =
  (* The Fig. 5 gadget body spans 20 instructions (3 stds + 16 pops +
     ret); classify over a window that can contain it. *)
  let gs = Gadget.scan ~max_len:22 (image ()) in
  let by_kind = Gadget.count_by_kind gs in
  let count k = try List.assoc k by_kind with Not_found -> 0 in
  Alcotest.(check bool) "found stk_move" true (count Gadget.Stk_move >= 1);
  Alcotest.(check bool) "found write_mem" true (count Gadget.Write_mem >= 1);
  Alcotest.(check bool) "found pop chains" true (count Gadget.Pop_chain >= 10)

let test_max_len_monotone () =
  let img = image () in
  let short = List.length (Gadget.scan ~max_len:3 img) in
  let long = List.length (Gadget.scan ~max_len:10 img) in
  Alcotest.(check bool) "longer window finds at least as many" true (long >= short)

let test_locate_paper_gadgets () =
  let b = Helpers.build_mavr () in
  match Gadget.locate_paper_gadgets b.image with
  | None -> Alcotest.fail "paper gadgets not found"
  | Some pg ->
      (* The scan-located addresses must coincide with the runtime's
         known labels (the attacker finds them without symbols). *)
      Alcotest.(check int) "stk_move = teardown label"
        (Mavr_firmware.Build.label b Mavr_firmware.Runtime.label_stk_move)
        pg.stk_move;
      Alcotest.(check int) "write_mem = std label"
        (Mavr_firmware.Build.label b Mavr_firmware.Runtime.label_write_mem)
        pg.write_mem;
      Alcotest.(check int) "pop half = pops label"
        (Mavr_firmware.Build.label b Mavr_firmware.Runtime.label_write_mem_pops)
        pg.write_mem_pops

let test_fig5_gadget_shape () =
  (* The located write_mem gadget has the exact Fig. 5 body: three stds
     through Y then a 16-pop run then ret. *)
  let img = image () in
  let pg = Option.get (Gadget.locate_paper_gadgets img) in
  let insns = ref [] in
  let pos = ref pg.write_mem in
  for _ = 1 to 20 do
    let insn, size = Mavr_avr.Decode.decode_bytes img.Image.code !pos in
    insns := insn :: !insns;
    pos := !pos + size
  done;
  match List.rev !insns with
  | Isa.Std (Isa.Y, 1, 5) :: Isa.Std (Isa.Y, 2, 6) :: Isa.Std (Isa.Y, 3, 7) :: rest ->
      let pops = List.filteri (fun i _ -> i < 16) rest in
      Alcotest.(check int) "sixteen pops" 16
        (List.length (List.filter (function Isa.Pop _ -> true | _ -> false) pops));
      (match List.nth rest 16 with
      | Isa.Ret -> ()
      | other -> Alcotest.failf "expected ret, got %s" (Isa.to_string other))
  | i :: _ -> Alcotest.failf "unexpected first instruction %s" (Isa.to_string i)
  | [] -> Alcotest.fail "empty"

let test_gadgets_move_under_randomization () =
  let img = image () in
  let pg = Option.get (Gadget.locate_paper_gadgets img) in
  let r = Mavr_core.Randomize.randomize ~seed:123 img in
  let pg' = Option.get (Gadget.locate_paper_gadgets r) in
  Alcotest.(check bool) "stk_move moved" true (pg.stk_move <> pg'.stk_move);
  Alcotest.(check bool) "write_mem moved" true (pg.write_mem <> pg'.write_mem)

let test_gadget_count_stable_under_randomization () =
  (* Randomization relocates gadgets; it does not (by itself) remove
     them — the defense works by hiding addresses, not by erasing
     gadgets (§V-B). *)
  let img = image () in
  let r = Mavr_core.Randomize.randomize ~seed:5 img in
  let n0 = List.length (Gadget.scan img) in
  let n1 = List.length (Gadget.scan r) in
  let diff = abs (n0 - n1) in
  Alcotest.(check bool) "count approximately preserved" true
    (float_of_int diff /. float_of_int n0 < 0.02)

let test_stock_has_consolidated_pop_run () =
  (* -mcall-prologues consolidates epilogues: the stock build exposes the
     shared __epilogue_restores__ pop run as a gadget-rich region. *)
  let b = Helpers.build_stock () in
  let gs = Gadget.scan b.image in
  let pops = List.filter (fun (g : Gadget.t) -> g.kind = Gadget.Pop_chain) gs in
  Alcotest.(check bool) "stock exposes pop chains" true (List.length pops > 5)

let () =
  Alcotest.run "gadget"
    [
      ( "scan",
        [
          Alcotest.test_case "finds gadgets" `Quick test_scan_finds_gadgets;
          Alcotest.test_case "bodies are straight-line" `Quick test_gadget_bodies_straightline;
          Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "max_len monotone" `Quick test_max_len_monotone;
        ] );
      ( "paper-gadgets",
        [
          Alcotest.test_case "locate matches labels" `Quick test_locate_paper_gadgets;
          Alcotest.test_case "Fig.5 shape" `Quick test_fig5_gadget_shape;
          Alcotest.test_case "gadgets move under randomization" `Quick
            test_gadgets_move_under_randomization;
          Alcotest.test_case "count stable under randomization" `Quick
            test_gadget_count_stable_under_randomization;
          Alcotest.test_case "stock pop-run consolidation" `Quick
            test_stock_has_consolidated_pop_run;
        ] );
    ]
