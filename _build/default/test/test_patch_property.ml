(* Property: randomization preserves behaviour on arbitrary programs.

   The firmware-level equivalence tests exercise one (large) program; here
   we generate many small random programs — random call DAGs, stores,
   function-pointer dispatch — randomize each with several permutations,
   run original and randomized to completion, and require identical final
   machine state.  This is the strongest correctness statement about
   Shuffle+Patch. *)

module Asm = Mavr_asm.Assembler
module Isa = Mavr_avr.Isa
module Cpu = Mavr_avr.Cpu
module Image = Mavr_obj.Image
module Rng = Mavr_prng.Splitmix

let i x = Asm.Insn x

(* Generate one random function.  Functions may only call higher-indexed
   functions (a DAG, no recursion); the last function is a leaf.  Bodies
   work exclusively on r16..r23: the upper registers legitimately carry
   addresses (Z and the loaded pointer bytes), which are layout-dependent
   by design and must not leak into the compared state. *)
let gen_function rng ~idx ~count =
  let name = Printf.sprintf "r%03d" idx in
  let body = ref [] in
  let emit it = body := it :: !body in
  let reg () = 16 + Rng.int rng 8 in
  let n_units = 2 + Rng.int rng 6 in
  for _ = 1 to n_units do
    match Rng.int rng 6 with
    | 0 -> emit (i (Isa.Ldi (reg (), Rng.int rng 256)))
    | 1 -> emit (i (Isa.Subi (reg (), Rng.int rng 256)))
    | 2 -> emit (i (Isa.Sts (0x600 + Rng.int rng 64, reg ())))
    | 3 -> emit (i (Isa.Add (reg (), reg ())))
    | 4 when idx + 1 < count ->
        emit (Asm.Call_sym (Printf.sprintf "r%03d" (idx + 1 + Rng.int rng (count - idx - 1))))
    | _ -> emit (i (Isa.Eor (reg (), reg ())))
  done;
  { Asm.name; items = List.rev (i Isa.Ret :: !body) }

let gen_program seed ~count =
  let rng = Rng.create ~seed in
  let funcs = List.init count (fun idx -> gen_function rng ~idx ~count) in
  let main =
    {
      Asm.name = "main";
      items =
        [
          (* init SP *)
          i (Isa.Ldi (28, 0xFF));
          i (Isa.Ldi (29, 0x21));
          i (Isa.Out (0x3D, 28));
          i (Isa.Out (0x3E, 29));
        ]
        @ List.concat_map
            (fun k -> [ Asm.Call_sym (Printf.sprintf "r%03d" k) ])
            (List.init (min 4 count) (fun j -> j * count / max 1 (min 4 count)))
        @ [
            (* Indirect call through the data-section function pointer
               (LDI-encoded code addresses are exactly what the compiler
               never emits and the randomizer never patches, §VI-B2 —
               so load the pointer from flash like a vtable dispatch). *)
            Asm.Ldi_sym (30, Asm.Lo8, "__data_load_start");
            Asm.Ldi_sym (31, Asm.Hi8, "__data_load_start");
            i (Isa.Lpm (24, true));
            i (Isa.Lpm (25, false));
            i (Isa.Movw (30, 24));
            i Isa.Icall;
            (* r24/r25 held the pointer bytes (address-valued): clear them
               so the final-state comparison sees only layout-independent
               data. *)
            i (Isa.Ldi (24, 0));
            i (Isa.Ldi (25, 0));
            i Isa.Break;
          ];
    }
  in
  let program =
    {
      Asm.vectors = [ Asm.Jmp_sym "main" ];
      funcs = main :: funcs;
      data = [ Asm.Word_sym (Printf.sprintf "r%03d" (count / 2)) ];
      defines = [];
    }
  in
  Image.of_assembly (Asm.assemble ~relax:false program)

(* Run to halt and fingerprint the observable state.  Z (r30/r31) is
   excluded: it legitimately holds a function's word address (loaded for
   the icall), which is exactly what randomization changes. *)
let run_state image =
  let cpu = Cpu.create () in
  Cpu.load_program cpu image.Image.code;
  let r = Cpu.run cpu ~max_cycles:200_000 in
  (* Compare r0..r23: the pointer registers (r24/r25 and Z) hold layout-
     dependent addresses by design. *)
  let regs = List.init 24 (Cpu.reg cpu) in
  let mem = Cpu.stack_slice cpu ~pos:0x600 ~len:64 in
  let tag = match r with `Halted Cpu.Break_hit -> "break" | _ -> "other" in
  (tag, regs, mem, Cpu.sp cpu, Cpu.cycles cpu)

let fst5 (a, _, _, _, _) = a

let prop_random_programs =
  QCheck.Test.make ~name:"randomize preserves behaviour on random programs" ~count:40
    QCheck.(pair (int_range 1 1_000_000) (int_range 3 25))
    (fun (seed, count) ->
      let count = max 3 count (* guard against out-of-range shrink candidates *) in
      let img = gen_program seed ~count in
      let reference = run_state img in
      let ok = ref (fst5 reference = "break") in
      for rseed = 1 to 3 do
        let r = Mavr_core.Randomize.randomize ~seed:(seed + rseed) img in
        if run_state r <> reference then ok := false
      done;
      !ok)

let prop_structure =
  QCheck.Test.make ~name:"structure verified on random programs" ~count:30
    QCheck.(pair (int_range 1 1_000_000) (int_range 3 20))
    (fun (seed, count) ->
      let count = max 3 count in
      let img = gen_program seed ~count in
      let r = Mavr_core.Randomize.randomize ~seed:(seed * 7) img in
      match Mavr_core.Randomize.verify_structure ~original:img ~randomized:r with
      | Ok () -> true
      | Error _ -> false)

let prop_identity_is_noop =
  QCheck.Test.make ~name:"identity permutation is byte-identical" ~count:20
    QCheck.(pair (int_range 1 1_000_000) (int_range 3 15))
    (fun (seed, count) ->
      let count = max 3 count in
      let img = gen_program seed ~count in
      let id = Mavr_core.Shuffle.identity img in
      (Mavr_core.Patch.apply img id).Image.code = img.Image.code)

let () =
  Alcotest.run "patch-property"
    [
      ( "properties",
        List.map Helpers.qtest [ prop_random_programs; prop_structure; prop_identity_is_noop ] );
    ]
