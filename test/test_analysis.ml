(* The static analyzer: CFG recovery, image lint, gadget survival, and
   the static payload-feasibility verdict cross-validated against the
   emulator's ground truth. *)

module Cpu = Mavr_avr.Cpu
module Isa = Mavr_avr.Isa
module Opcode = Mavr_avr.Opcode
module Image = Mavr_obj.Image
module Gadget = Mavr_core.Gadget
module Rop = Mavr_core.Rop
module Randomize = Mavr_core.Randomize
module Layout = Mavr_firmware.Layout
module Cfg = Mavr_analysis.Cfg
module Lint = Mavr_analysis.Lint
module Survival = Mavr_analysis.Survival

let mavr_image () = (Helpers.build_mavr ()).image
let stock_image () = (Helpers.build_stock ()).image

(* Replace bytes of an image's code in place (byte surgery for planted
   lint bugs). *)
let poke (img : Image.t) pos s =
  let b = Bytes.of_string img.code in
  Bytes.blit_string s 0 b pos (String.length s);
  { img with code = Bytes.to_string b }

(* ---- CFG recovery ---- *)

let test_cfg_full_coverage () =
  let cfg = Cfg.recover (mavr_image ()) in
  let s = Cfg.stats cfg in
  Alcotest.(check bool) "descent reaches everything the generator emits" true
    (s.coverage_pct > 99.9);
  Alcotest.(check int) "no linear-sweep fallback needed" 0 s.sweep_insns

let test_cfg_symbols_reachable () =
  let img = mavr_image () in
  let cfg = Cfg.recover img in
  List.iter
    (fun (s : Image.symbol) ->
      Alcotest.(check bool) (Printf.sprintf "%s entry reachable" s.name) true
        (Cfg.is_reachable cfg s.addr))
    img.symbols

(* ---- lint on healthy images ---- *)

let test_lint_clean_builds () =
  Alcotest.(check int) "mavr build lint-clean" 0 (List.length (Lint.run (mavr_image ())));
  Alcotest.(check int) "stock build lint-clean" 0 (List.length (Lint.run (stock_image ())))

let test_lint_clean_randomized () =
  let img = mavr_image () in
  List.iter
    (fun seed ->
      let r = Randomize.randomize ~seed img in
      Alcotest.(check int)
        (Printf.sprintf "randomized (seed %d) lint-clean" seed)
        0
        (List.length (Lint.run r)))
    [ 1; 17; 4242 ]

(* ---- lint on planted bugs ---- *)

let has_kind kind findings = List.exists (fun (f : Lint.finding) -> f.kind = kind) findings

let test_lint_catches_bad_vector () =
  let img = mavr_image () in
  (* Redirect vector 4 one word past a real function entry. *)
  let fn = List.nth img.symbols (List.length img.symbols / 2) in
  let slot = Mavr_avr.Device.Vector.byte_addr 4 in
  let bad = poke img slot (Opcode.encode_bytes (Isa.Jmp ((fn.addr + 2) / 2))) in
  Alcotest.(check bool) "vector_target_not_function reported" true
    (has_kind Lint.Vector_target_not_function (Lint.run bad))

let test_lint_catches_stray_sp_write () =
  let img = mavr_image () in
  (* Plant an [out SPL] at the top of a filler function — a stack pivot
     with none of the whitelisted idioms around it. *)
  let fn =
    List.find (fun (s : Image.symbol) -> String.length s.name >= 3 && String.sub s.name 0 3 = "fn_")
      img.symbols
  in
  let bad = poke img fn.addr (Opcode.encode_bytes (Isa.Out (Mavr_avr.Device.Io.spl, 24))) in
  Alcotest.(check bool) "stray_sp_write reported" true
    (has_kind Lint.Stray_sp_write (Lint.run bad))

let test_lint_catches_sts_sp_alias () =
  let img = mavr_image () in
  let fn =
    List.find (fun (s : Image.symbol) -> String.length s.name >= 3 && String.sub s.name 0 3 = "fn_")
      img.symbols
  in
  (* SPL/SPH are also reachable through their data-space addresses
     0x5D/0x5E — an [sts] stack pivot the old io-port check missed. *)
  List.iter
    (fun addr ->
      let bad = poke img fn.addr (Opcode.encode_bytes (Isa.Sts (addr, 24))) in
      Alcotest.(check bool)
        (Printf.sprintf "sts 0x%02x flagged as stray SP write" addr)
        true
        (has_kind Lint.Stray_sp_write (Lint.run bad)))
    [ 0x5D; 0x5E ]

let test_lint_catches_wild_funptr () =
  let img = mavr_image () in
  match img.funptr_locs with
  | [] -> Alcotest.fail "image has no recorded function pointers"
  | loc :: _ ->
      (* Point the first vtable slot into the data region. *)
      let w = (img.exec_low_end + 2) / 2 in
      let bad = poke img loc (Printf.sprintf "%c%c" (Char.chr (w land 0xFF)) (Char.chr (w lsr 8))) in
      let findings = Lint.run bad in
      Alcotest.(check bool) "funptr finding reported" true
        (has_kind Lint.Funptr_out_of_bounds findings || has_kind Lint.Funptr_not_function findings)

(* ---- gadget scan: mid-instruction entries ---- *)

let test_gadget_addresses_unique () =
  let gs = Gadget.scan (mavr_image ()) in
  let addrs = List.map (fun (g : Gadget.t) -> g.byte_addr) gs in
  Alcotest.(check int) "entry addresses are unique (suffixes deduped)"
    (List.length addrs)
    (List.length (List.sort_uniq compare addrs))

let test_gadget_mid_instruction_entries () =
  let img = mavr_image () in
  let boundaries = Hashtbl.create 4096 in
  List.iter
    (fun (s, e) ->
      List.iter
        (fun (l : Mavr_avr.Disasm.line) -> Hashtbl.replace boundaries l.byte_addr ())
        (Mavr_avr.Disasm.sweep ~pos:s ~len:(e - s) img.Image.code))
    [ (0, img.exec_low_end); (img.text_start, img.text_end) ];
  let mid =
    List.filter
      (fun (g : Gadget.t) -> not (Hashtbl.mem boundaries g.byte_addr))
      (Gadget.scan img)
  in
  Alcotest.(check bool) "scan finds mid-instruction gadget entries" true (List.length mid > 0)

(* ---- survival census and static feasibility vs emulator ---- *)

let paper_gadgets img =
  match Gadget.locate_paper_gadgets img with
  | Some g -> g
  | None -> Alcotest.fail "paper gadgets absent from the unprotected image"

let test_feasible_on_base () =
  let img = mavr_image () in
  Helpers.assert_ok (Survival.payload_feasible ~reference:img ~gadgets:(paper_gadgets img) img)

let test_infeasible_on_randomized () =
  let img = mavr_image () in
  let gadgets = paper_gadgets img in
  for seed = 1 to 20 do
    match Survival.payload_feasible ~reference:img ~gadgets (Randomize.randomize ~seed img) with
    | Ok () -> Alcotest.failf "payload statically feasible on layout seed %d" seed
    | Error _ -> ()
  done

(* Run the stealthy V2 attack against [victim] and report whether the
   gyro-config write landed (the emulator's ground truth). *)
let attack_lands victim =
  let b, ti, obs = Helpers.attack_target () in
  ignore b;
  let cpu = Helpers.boot victim in
  List.iter (Cpu.uart_send cpu)
    (Rop.v2_stealthy ti obs ~writes:[ Rop.write_u16 obs ~addr:Layout.gyro_cfg ~value:0x4141 ~neighbour:0 ]);
  ignore (Cpu.run cpu ~max_cycles:3_000_000);
  Cpu.data_peek cpu Layout.gyro_cfg lor (Cpu.data_peek cpu (Layout.gyro_cfg + 1) lsl 8) = 0x4141

let test_static_verdict_matches_emulator () =
  let img = mavr_image () in
  let gadgets = paper_gadgets img in
  (* Unprotected image: static says feasible, emulator confirms. *)
  Alcotest.(check bool) "emulator: attack succeeds on unprotected image" true (attack_lands img);
  Helpers.assert_ok (Survival.payload_feasible ~reference:img ~gadgets img);
  (* Randomized layouts: static says infeasible, emulator confirms. *)
  List.iter
    (fun seed ->
      let victim = Randomize.randomize ~seed img in
      let static_feasible =
        Result.is_ok (Survival.payload_feasible ~reference:img ~gadgets victim)
      in
      Alcotest.(check bool)
        (Printf.sprintf "static verdict infeasible (seed %d)" seed)
        false static_feasible;
      Alcotest.(check bool)
        (Printf.sprintf "emulator agrees: attack fails (seed %d)" seed)
        false (attack_lands victim))
    [ 1; 2; 3 ]

let test_census_sanity () =
  let img = mavr_image () in
  let c = Survival.census ~layouts:8 img in
  Alcotest.(check int) "eight layouts measured" 8 (Array.length c.survivors_per_layout);
  Alcotest.(check bool) "base image has gadgets" true (c.base_gadgets > 100);
  Alcotest.(check int) "paper payload feasible in no layout" 0 c.feasible_layouts;
  Alcotest.(check bool) "survival rate collapses under randomization" true
    (c.mean_survival_rate < 0.05);
  Alcotest.(check bool) "max >= mean" true (c.max_survival_rate >= c.mean_survival_rate)

let () =
  Alcotest.run "analysis"
    [
      ( "cfg",
        [
          Alcotest.test_case "full coverage, no sweep fallback" `Quick test_cfg_full_coverage;
          Alcotest.test_case "every symbol reachable" `Quick test_cfg_symbols_reachable;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean on fresh builds" `Quick test_lint_clean_builds;
          Alcotest.test_case "clean on randomized layouts" `Quick test_lint_clean_randomized;
          Alcotest.test_case "catches corrupted vector" `Quick test_lint_catches_bad_vector;
          Alcotest.test_case "catches stray SP write" `Quick test_lint_catches_stray_sp_write;
          Alcotest.test_case "catches sts to SP data-space alias" `Quick
            test_lint_catches_sts_sp_alias;
          Alcotest.test_case "catches wild function pointer" `Quick test_lint_catches_wild_funptr;
        ] );
      ( "gadgets",
        [
          Alcotest.test_case "entry addresses unique" `Quick test_gadget_addresses_unique;
          Alcotest.test_case "mid-instruction entries found" `Quick
            test_gadget_mid_instruction_entries;
        ] );
      ( "survival",
        [
          Alcotest.test_case "payload feasible on base image" `Quick test_feasible_on_base;
          Alcotest.test_case "payload infeasible on 20 layouts" `Quick
            test_infeasible_on_randomized;
          Alcotest.test_case "static verdict matches emulator" `Slow
            test_static_verdict_matches_emulator;
          Alcotest.test_case "census sanity" `Quick test_census_sanity;
        ] );
    ]
