test/test_randomize.ml: Alcotest Array Char Helpers List Mavr_avr Mavr_core Mavr_firmware Mavr_mavlink Mavr_obj Mavr_prng Printf QCheck String
