(** Instruction encoder: {!Isa.t} to AVR machine code.

    Encodings follow the Atmel AVR instruction set manual bit-for-bit, so
    images produced here are real AVR machine code (the decoder
    {!Decode.decode} is its exact inverse; this round-trip is
    property-tested). *)

(** [encode i] is the instruction as one or two 16-bit program words.
    @raise Invalid_argument when an operand is out of range for the
    instruction's encoding (e.g. [Ldi] with a register below r16). *)
val encode : Isa.t -> int list

(** [encode_bytes i] is the little-endian byte string of [encode i]
    (AVR program words are stored little-endian in flash and HEX files). *)
val encode_bytes : Isa.t -> string

(** [validate i] checks operand ranges without encoding; returns an error
    message on failure. *)
val validate : Isa.t -> (unit, string) result
