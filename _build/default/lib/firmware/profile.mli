(** Application profiles and toolchain configurations.

    The paper evaluates MAVR on three ArduPilot applications (Table I);
    each profile reproduces that application's structural footprint —
    function count and flash code size — in our synthetic generator.  The
    toolchain type models the two GCC/Binutils configurations of §VI-B1:
    the stock build (linker relaxation on, shared call prologues) and the
    MAVR custom toolchain ([--no-relax], [-mno-call-prologues]). *)

type t = {
  name : string;
  n_functions : int;  (** total function symbols, incl. the runtime kernel *)
  target_size : int;  (** stock flash code size in bytes (Table III) *)
  seed : int;  (** code-generation seed *)
}

val arduplane : t
(** 917 functions, 221 608 bytes. *)

val arducopter : t
(** 1030 functions, 244 532 bytes. *)

val ardurover : t
(** 800 functions, 177 870 bytes. *)

val all : t list

(** [tiny ~n ~seed] is a small profile for fast tests and the empirical
    brute-force study (n functions, proportional size). *)
val tiny : n:int -> seed:int -> t

type toolchain = {
  relax : bool;  (** Binutils linker relaxation ([call]→[rcall]) *)
  call_prologues : bool;  (** shared prologue/epilogue stubs *)
  vulnerable : bool;  (** keep the injected MAVLink length-check bug (§IV-B) *)
}

val stock : toolchain
(** relax on, shared prologues on, vulnerability present. *)

val mavr : toolchain
(** [--no-relax], [-mno-call-prologues]; vulnerability still present (the
    defense does not remove the bug, it breaks its exploitation). *)

val patched : toolchain
(** like [mavr] but with the length check restored (for differential
    tests). *)

val pp : Format.formatter -> t -> unit
