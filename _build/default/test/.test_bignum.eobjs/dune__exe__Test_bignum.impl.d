test/test_bignum.ml: Alcotest Float Helpers List Mavr_bignum QCheck
