test/test_cpu.mli:
