examples/master_lifecycle.mli:
