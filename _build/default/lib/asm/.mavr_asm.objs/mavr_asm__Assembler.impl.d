lib/asm/assembler.ml: Array Buffer Char Hashtbl Isa List Mavr_avr Opcode Printf String
