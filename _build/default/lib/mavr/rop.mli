(** The paper's three ROP attacks (§IV), as MAVLink frame builders.

    The attacker model (§IV-A): a malicious ground station holding the
    {e unprotected} application binary.  From that binary alone the
    attacker (1) scans for the Fig. 4/5 gadgets, (2) dry-runs the firmware
    locally to learn the vulnerable handler's frame geometry and the
    original register/stack contents needed for a clean return, and
    (3) crafts MAVLink packets whose payload overflows the PARAM_SET
    stack buffer.

    Attack geometry (discovered, not assumed): the vulnerable handler
    copies the staged payload into a 64-byte stack buffer; bytes 66..68
    land in the saved registers, bytes 69..71 in the return address.  The
    payload remains available at the fixed [STAGE] address, so the
    stealthy variants pivot the stack pointer into [STAGE] and run the
    chain there, leaving the callers' stack intact; the chain's final
    rounds repair the six smashed bytes and pivot back — the "clean
    return" of §IV-D.

    - {b V1} ([v1_basic]): one frame; writes 3 attacker bytes (e.g. the
      gyroscope value) then crashes — the stack frame is destroyed.
    - {b V2} ([v2_stealthy]): two frames (one benign staging frame, one
      71-byte trigger); performs up to 6 arbitrary 3-byte writes and
      returns cleanly — execution continues as if nothing happened.
    - {b V3} ([v3_trampoline]): arbitrarily many frames; stages an
      unbounded payload into free SRAM 18 bytes per volley (every volley
      returns cleanly), then pivots into it and executes it as one big
      chain before returning cleanly again. *)

type target_info = {
  image : Mavr_obj.Image.t;  (** the unprotected binary *)
  gadgets : Gadget.paper_gadgets;
  stage_addr : int;  (** static staging buffer (from binary analysis) *)
  vuln_msgid : int;  (** PARAM_SET, the vulnerable handler *)
  staging_msgid : int;  (** COMMAND_LONG, a benign handler used to stage *)
}

type observation = {
  s0 : int;  (** SP on entry to the vulnerable handler (before its pushes) *)
  saved_bytes : string;  (** the 6 original bytes at [s0-5 .. s0]:
                             saved r28, r29, r16, return address hi/mid/lo *)
  regs : int array;  (** all 32 registers at the frame teardown *)
  gyro_addr : int;  (** data-space address of the gyro sensor register *)
}

(** A single 3-byte arbitrary write: the write_mem gadget stores
    [bytes = (b1, b2, b3)] at [base+1], [base+2], [base+3]. *)
type write = { base : int; bytes : int * int * int }

(** [analyze build] — static analysis of the unprotected binary.
    @raise Failure when the required gadgets are absent. *)
val analyze : Mavr_firmware.Build.t -> target_info

(** [observe ti] — the attacker's local dry run: boots the unprotected
    image in a local emulator, sends a benign PARAM_SET and breaks at the
    frame teardown.
    @raise Failure when the dry run does not reach the teardown. *)
val observe : target_info -> observation

(** [writes_for_value ~addr ~lo ~hi obs] — the single write that sets a
    16-bit memory-mapped value (third byte preserves the neighbour). *)
val write_u16 : observation -> addr:int -> value:int -> neighbour:int -> write

(** {2 Attack builders (returning wire-ready MAVLink frames)} *)

(** [v1_basic ti obs ~writes] — the crash-after-effect attack. *)
val v1_basic : target_info -> observation -> writes:write list -> string list

(** [v2_stealthy ti obs ~writes] — clean-return attack; at most 6 writes
    per invocation.
    @raise Invalid_argument with more than 6 writes. *)
val v2_stealthy : target_info -> observation -> writes:write list -> string list

(** [v3_trampoline ti obs ~payload ~dest] — stages [payload] at SRAM
    address [dest] (clean return after every volley), then executes it:
    the payload itself is assembled into a chain performing [payload]'s
    writes... see [v3_stage] and [v3_execute] for the two phases. *)
val v3_stage : target_info -> observation -> data:string -> dest:int -> string list

(** [v3_execute ti obs ~chain_dest ~writes] — stages a (possibly very
    long) chain of [writes] at [chain_dest] and fires one trigger volley
    that pivots into it; the big chain repairs and returns cleanly. *)
val v3_execute : target_info -> observation -> chain_dest:int -> writes:write list -> string list

(** The raw chain bytes [v3_execute] stages (exposed for tests and for
    the Fig. 6 walkthrough). *)
val big_chain_bytes : target_info -> observation -> writes:write list -> string

(** [crash_probe ti] — a "failed brute-force guess": a trigger frame whose
    overwritten return address points beyond the programmed flash, so the
    victim's PC goes wild on {e any} layout.  This is the deterministic
    failure the §V-D analysis assumes ("a failed attempt will result in
    the program counter being incremented incorrectly"), used to exercise
    the master processor's detection path. *)
val crash_probe : target_info -> string list

(** Frame-geometry constants derived in the module (exposed for tests). *)
val trigger_len : int
(** Length of the trigger frame payload (72: exactly up to the return
    address, no caller-stack damage). *)
