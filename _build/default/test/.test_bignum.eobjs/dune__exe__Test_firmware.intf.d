test/test_firmware.mli:
