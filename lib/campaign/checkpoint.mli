(** Resumable campaign state: streaming JSONL results + atomic snapshots.

    A checkpoint persists the completed-task frontier of a deterministic
    campaign.  Because every task's seed is split from the campaign root
    up front ({!Engine.task_seeds}), a task's result is a pure function
    of [(spec, index)] — so a killed run can resume by replaying the
    recorded results into their index slots and running only the
    remainder, and the final output is byte-identical to an
    uninterrupted run at any [--jobs].

    On-disk format (JSONL, one object per line):
    {v
    {"kind":"header","version":1,"spec_hash":H,"seed":S,"tasks":N}
    {"kind":"task","index":I,"result":{...}}
    {"kind":"skip","index":I,"reason":"early_stop"}
    v}

    Snapshots are full rewrites — header plus every entry sorted by
    index — written to a pid-unique sibling temp file
    ([path ^ "." ^ pid ^ ".tmp"]), fsynced, and renamed over [path]
    (with the containing directory fsynced so the rename survives power
    loss), so the file on disk is always a complete, internally
    consistent frontier (SIGKILL or power loss at any instant loses at
    most the entries since the last snapshot, never corrupts).  A
    failed write (ENOSPC, EIO) unlinks the temp file instead of leaking
    it, and {!create}/{!resume} sweep any stale temp files left by
    crashed processes.  The sorted order also makes snapshot bytes a
    pure function of the completed set, independent of the completion
    order a particular [--jobs] produced.

    The optional [stream] sink additionally receives every line as it
    is emitted, in completion order — the live results JSONL
    ([--results]).  On {!resume} the primed frontier is replayed into
    the stream first, so a resumed results file still covers every
    completed task.

    All recording entry points are thread-safe (internal mutex); they
    are called from worker domains as tasks complete. *)

module Json := Mavr_telemetry.Json

val version : int

type spec = { spec_hash : string; seed : int; tasks : int }

type entry = Result of Json.t | Skip of string

(** Raised by consumers (e.g. [Montecarlo.run]) when a structurally
    valid checkpoint carries an undecodable result payload. *)
exception Corrupt of string

type t

(** [hash_fields fields] — FNV-1a 64 (hex) over the compact JSON
    rendering of [fields]; the stable spec fingerprint stored in the
    header and checked on resume. *)
val hash_fields : (string * Json.t) list -> string

(** [create ?path ?stream ?every spec] — fresh checkpoint writer.
    [path = None] is stream-only (no snapshot files).  A snapshot is
    rewritten after every [every] (default 32) recorded entries; an
    initial header-only snapshot is written immediately. *)
val create : ?path:string -> ?stream:(string -> unit) -> ?every:int -> spec -> t

(** [load ~path] parses and structurally validates a checkpoint file:
    header first (version, spec fields), every entry line well-formed,
    indices in range and duplicate-free. *)
val load : path:string -> (spec * (int * entry) list, string) result

(** [resume ~path ?stream ?every spec] — [load], verify the file's spec
    (hash, seed, task count) matches [spec], and return a writer primed
    with the recorded frontier.  The header and primed entries are
    replayed into [stream]. *)
val resume : path:string -> ?stream:(string -> unit) -> ?every:int -> spec -> (t, string) result

(** [record t ~index result] — one task completed.  Thread-safe. *)
val record : t -> index:int -> Json.t -> unit

(** [skip t ~index ~reason] — one task deliberately not run (early
    stopping); recorded so the frontier stays gap-free. *)
val skip : t -> index:int -> reason:string -> unit

(** Force a snapshot now (also called by {!close}). *)
val snapshot : t -> unit

(** Final snapshot; the finished file holds the complete frontier. *)
val close : t -> unit

(** Recorded entries, sorted by index. *)
val entries : t -> (int * entry) list

(** Number of recorded entries (tasks + skips). *)
val completed : t -> int

val snapshots_written : t -> int
val spec : t -> spec

(** Test hook for the CI kill/resume rules: after the [n]th {e live}
    {!record} in this process, force a snapshot and SIGKILL the
    process — the exact mid-run death the resume path must survive.
    Primed (resumed) entries and skips do not count. *)
val abort_after : t -> int -> unit
