examples/quickstart.ml: Format List Mavr_avr Mavr_bignum Mavr_core Mavr_firmware Mavr_obj Printf String
