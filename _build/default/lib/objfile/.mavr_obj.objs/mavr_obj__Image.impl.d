lib/objfile/image.ml: Array Char Format List Mavr_asm Printf String
