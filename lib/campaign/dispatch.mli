(** Multi-host campaign sharding: drive {!Service} workers over shards.

    A dispatcher splits a campaign's task-index space into contiguous,
    block-aligned shards, sends each shard to a worker speaking the
    {!Service} protocol (one spec line in, streamed progress/entry lines
    out, one terminal line), and merges the per-shard index-keyed
    checkpoint entries into a single gap-free frontier.  Because every
    task's result is a pure function of [(spec, index)] and statistical
    decisions (early stopping) read only their own cell's prefix, the
    merged frontier — replayed into a fresh {!Checkpoint} and folded by
    the campaign's own join — reproduces the single-host document
    byte-for-byte.

    Failure model: a worker is {e dead} on connection loss, unreadable
    output, or heartbeat silence longer than [heartbeat_timeout_s]; its
    shard is narrowed past the fully-received leading blocks (received
    entries are pure per-index values, so they are kept) and requeued,
    with exponential backoff, to a surviving idle worker — up to
    [max_attempts] assignments per shard.  A worker that stays up but
    answers with a terminal ["error"] line keeps its place in the pool;
    only its assignment is charged.  The dispatcher itself is
    single-threaded: one [select] loop multiplexing every worker
    connection.

    Addresses are Unix domain sockets today; the {!type-address} type is
    the seam where TCP endpoints slot in later. *)

module Json := Mavr_telemetry.Json

(** Worker endpoint.  [Unix_socket path] — a {!Service.serve} listener
    on a local socket file. *)
type address = Unix_socket of string

(** Accepts ["unix:PATH"] or a bare path. *)
val address_of_string : string -> (address, string) result

val address_to_string : address -> string

(** Contiguous global-index range [\[lo, hi)], block-aligned. *)
type shard = { lo : int; hi : int }

(** [plan ~tasks ~block ~shards] — split [\[0, tasks)] into at most
    [shards] contiguous, near-even, nonempty ranges whose bounds are
    multiples of [block] (the campaign's per-cell trial count; alignment
    keeps per-cell statistics whole within one worker).
    @raise Invalid_argument if [tasks] is not a multiple of [block], or
    either is out of range. *)
val plan : tasks:int -> block:int -> shards:int -> shard list

(** Observable dispatcher transitions, in event order — the hook CI uses
    to kill a worker mid-run at a deterministic point, and the material
    of the dispatch session log. *)
type event =
  | Assigned of { worker : int; shard : shard; attempt : int }
  | Entry_received of { worker : int; index : int; fresh : bool }
  | Heartbeat of { worker : int; seq : int }
  | Shard_done of { worker : int; shard : shard }
  | Worker_failed of { worker : int; reason : string }
  | Requeued of { shard : shard; attempts : int }

type outcome = {
  entries : (int * Checkpoint.entry) list;
      (** every shard's entries merged, sorted by index, gap-free over
          the union of the planned shards *)
  assignments : int;  (** shard assignments issued (>= shard count) *)
  worker_failures : int;  (** dead-worker events *)
  heartbeats : int;  (** worker heartbeat lines observed *)
}

type error =
  | Unresolved of { shard : shard; attempts : int; reason : string }
      (** a shard could not be completed within [max_attempts] *)
  | No_workers  (** the worker pool was empty or entirely dead *)

val error_to_string : error -> string

(** [run ~spec ~request ~block ~workers ~shards ()] — dispatch [shards]
    across [workers] and merge.  [request ~lo ~hi] builds the spec
    object sent to a worker for one shard (the campaign spec plus a
    ["shard"] member).  Every worker's streamed header line is checked
    against [spec] (hash, seed, task count); entry lines outside
    [\[0, spec.tasks)] or unparsable output fail the worker.

    [progress], when given, receives the merged stream: the total is
    registered up front and each {e fresh} index (first time an entry
    for it arrives, from any worker) ticks {!Progress.task_done} — so
    the heartbeat sequence is gap-free and the frontier emission fires
    exactly once, like a single-host run.  A ["dispatch"] detail
    provider reporting shard/worker counts is registered on it.

    [on_event] sees every {!type-event} from the dispatcher thread. *)
val run :
  ?heartbeat_timeout_s:float ->
  ?max_attempts:int ->
  ?connect_timeout_s:float ->
  ?progress:Progress.t ->
  ?on_event:(event -> unit) ->
  spec:Checkpoint.spec ->
  request:(lo:int -> hi:int -> Json.t) ->
  block:int ->
  workers:address list ->
  shards:shard list ->
  unit ->
  (outcome, error) result
