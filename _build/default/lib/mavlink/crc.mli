(** CRC-16/MCRF4XX, the checksum of the MAVLink protocol (Fig. 2).

    MAVLink seeds the accumulator with 0xFFFF, covers every frame byte
    after the start magic, and finally accumulates the per-message
    CRC_EXTRA byte so that sender and receiver must agree on message
    layouts. *)

type t

val init : t

(** [accumulate crc byte] folds one byte (0..255) into the checksum. *)
val accumulate : t -> int -> t

val accumulate_string : t -> string -> t

(** Final 16-bit value. *)
val value : t -> int

(** [of_string s] is the checksum of all of [s] from the initial seed. *)
val of_string : string -> int
