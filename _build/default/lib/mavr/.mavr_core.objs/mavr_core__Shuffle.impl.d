lib/mavr/shuffle.ml: Array List Mavr_obj Mavr_prng
