(** Worklist fixpoint data-flow engine over {!Cfg} recoveries.

    The solver is deliberately small and direction-agnostic: a node is
    an instruction (byte) address, a {e transfer} maps a node's in-state
    to per-edge out-states, and the engine iterates a FIFO worklist
    until the in-states stop changing under the client's lattice join.
    Forward analyses pass the CFG successor edges; backward analyses
    pass the reversed edges (see {!predecessors}) and read "in-state"
    as the state {e after} the instruction.

    Per-edge out-states (rather than one out-state fanned to every
    successor) let clients refine facts along branch outcomes — the
    taint client narrows a compared register on the bounded arm of a
    [cpi]/[brlo] clamp, which is exactly what separates the checked
    MAVLink handler from the §IV vulnerable one.

    Interprocedural clients condense recursion with {!sccs} (Tarjan,
    emitted callees-first) and build their supergraph edges from
    {!Callgraph}: direct/indirect call sites, cross-function tail
    jumps, and the ret-delivery map closed over tail jumps. *)

(** A join-semilattice of abstract states. *)
module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Solver (D : DOMAIN) : sig
  type result = {
    in_states : (int, D.t) Hashtbl.t;  (** fixpoint in-state per reached node *)
    iterations : int;  (** worklist pops until quiescence *)
  }

  (** [solve ~nodes ~seeds ~transfer ()] runs to fixpoint.  [nodes] is
      the universe — edges leaving it are dropped.  [seeds] initialize
      (and enqueue) entry nodes.  [transfer n s] returns the successor
      edges of [n] with the out-state carried along each.

      Termination: guaranteed for finite-height lattices.  For infinite
      chains (e.g. integer depth counters) pass [widen]: after a node's
      in-state has strictly grown [max_joins] times (default 256),
      every further join at that node is widened through it — map to
      your lattice's top there. *)
  val solve :
    ?max_joins:int ->
    ?widen:(D.t -> D.t) ->
    nodes:int list ->
    seeds:(int * D.t) list ->
    transfer:(int -> D.t -> (int * D.t) list) ->
    unit ->
    result
end

(** [predecessors ~nodes ~succs] materializes the reversed edge map —
    the edge function a backward analysis feeds to {!Solver.solve}. *)
val predecessors : nodes:int list -> succs:(int -> int list) -> int -> int list

(** [sccs ~nodes ~succs] — strongly connected components (iterative
    Tarjan), in reverse topological order of the condensation: each
    component precedes every component with an edge {e into} it, so
    with call edges as [succs] callees come out before callers.
    Singleton components may still carry a self-loop — check. *)
val sccs : nodes:int list -> succs:(int -> int list) -> int list list

(** The interprocedural skeleton: reachable code partitioned into
    functions (symbol spans; low-region 4-byte jmp slots — vectors and
    icall trampolines — are their own nodes), with call sites, tail
    jumps and the return-delivery relation. *)
module Callgraph : sig
  type site = {
    site_addr : int;  (** the transfer instruction *)
    site_ret : int;  (** its continuation (next instruction) *)
    targets : int list;  (** callee/jump byte addresses; indirect sites
                             fan out to every stored function pointer *)
  }

  type node = {
    entry : int;  (** partition key: function entry or low-slot address *)
    label : string;
    mutable calls : site list;  (** [call]/[rcall]/[icall] sites inside *)
    mutable tails : site list;  (** cross-function [jmp]/[rjmp]/[ijmp] *)
  }

  type t

  val build : Cfg.t -> t

  (** Ascending by [entry]. *)
  val nodes : t -> node list

  val node : t -> int -> node option

  (** [owner t addr] is the partition key of the code at [addr]. *)
  val owner : t -> int -> int

  (** Funptr-table targets inside executable regions, sorted — the
      conservative target set of every [icall]/[ijmp]. *)
  val icall_targets : t -> int list

  (** [ret_targets t key] — return addresses the [ret]s executing in
      partition [key] deliver to: continuations of every call site
      targeting it, closed transitively over tail jumps (a ret reached
      through [g] tail-jumping into [f] also returns to [g]'s
      callers). *)
  val ret_targets : t -> int -> int list
end
