(** Live campaign progress as a heartbeat JSONL stream.

    A campaign is otherwise a black box between launch and one terminal
    JSON document; this sink makes a multi-hour grid watchable: every
    emitted line is a self-contained JSON object carrying a monotonic
    ["seq"], tasks done/total, the overall completion rate and ETA, plus
    whatever detail providers the instrumented layers registered
    (per-cell running detection rates from [Montecarlo], per-domain
    pool utilization from the CLI).

    Emission discipline: {!task_done} is called from worker domains on
    every task completion; it bumps an atomic counter and emits a line
    only when the heartbeat interval has elapsed {e and} the sink lock
    is free ([try_lock] — a busy sink never blocks a worker).  The one
    exception is the frontier completion (done reaches total): that
    emission blocks for the lock and is guaranteed, with
    [reason = "final"].  A run whose phases each call {!add_total}
    crosses the frontier once per phase, so a stream may carry several
    "final" lines; the last one covers the whole run.  The
    stream is advisory by design: line {e content} sampled mid-run
    depends on scheduling and carries wall-clock times, so it lives
    outside the deterministic-output contract (unlike [--trace]'s
    stripped form).  Consumers detect drops/reorders via ["seq"]. *)

type t

(** [create ?interval_s ~sink ()] — heartbeat stream writing each line
    (without the trailing newline) to [sink].  [interval_s] (default
    [0.5]) is the minimum wall-clock spacing between heartbeat lines;
    [0.] emits on every completion. *)
val create : ?interval_s:float -> sink:(string -> unit) -> unit -> t

(** [add_total t n] grows the expected task count (called by each
    instrumented phase as it learns its fan-out). *)
val add_total : t -> int -> unit

(** [on_heartbeat t f] registers a detail provider: [f ()] is appended
    to every subsequent line's fields.  Providers run under the sink
    lock, possibly from any worker domain — they must be cheap and
    thread-safe (read atomics, not locks).  Registration itself takes
    the sink lock, so mid-run registration is safe: the provider joins
    every line emitted after the call returns. *)
val on_heartbeat : t -> (unit -> (string * Mavr_telemetry.Json.t) list) -> unit

(** [task_done t] — one task finished; may emit a heartbeat line.  The
    completion that brings done up to total always emits a line with
    [reason = "final"] (blocking for the sink lock if necessary). *)
val task_done : t -> unit

(** [emit t ~reason] — force one line out (start / final summary),
    bypassing the interval gate but not the lock. *)
val emit : t -> reason:string -> unit

(** Lines emitted so far (the last line's ["seq"]). *)
val lines_emitted : t -> int

val tasks_done : t -> int
val total : t -> int
