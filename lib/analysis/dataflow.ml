module Isa = Mavr_avr.Isa
module Image = Mavr_obj.Image

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Solver (D : DOMAIN) = struct
  type result = { in_states : (int, D.t) Hashtbl.t; iterations : int }

  let solve ?(max_joins = 256) ?widen ~nodes ~seeds ~transfer () =
    let node_set = Hashtbl.create (max 16 (2 * List.length nodes)) in
    List.iter (fun n -> Hashtbl.replace node_set n ()) nodes;
    let states = Hashtbl.create 1024 in
    let joins = Hashtbl.create 64 in
    let work = Queue.create () in
    let queued = Hashtbl.create 1024 in
    let enqueue n =
      if not (Hashtbl.mem queued n) then begin
        Hashtbl.replace queued n ();
        Queue.add n work
      end
    in
    let update n s =
      if Hashtbl.mem node_set n then
        match Hashtbl.find_opt states n with
        | None ->
            Hashtbl.replace states n s;
            enqueue n
        | Some old ->
            let j = D.join old s in
            if not (D.equal j old) then begin
              let c = (match Hashtbl.find_opt joins n with Some c -> c | None -> 0) + 1 in
              Hashtbl.replace joins n c;
              let j =
                if c > max_joins then match widen with Some w -> w j | None -> j else j
              in
              Hashtbl.replace states n j;
              enqueue n
            end
    in
    List.iter (fun (n, s) -> update n s) seeds;
    let iterations = ref 0 in
    while not (Queue.is_empty work) do
      let n = Queue.pop work in
      Hashtbl.remove queued n;
      incr iterations;
      match Hashtbl.find_opt states n with
      | None -> ()
      | Some s -> List.iter (fun (m, s') -> update m s') (transfer n s)
    done;
    { in_states = states; iterations = !iterations }
end

let predecessors ~nodes ~succs =
  let preds = Hashtbl.create (max 16 (2 * List.length nodes)) in
  List.iter
    (fun n ->
      List.iter
        (fun m ->
          let cur = match Hashtbl.find_opt preds m with Some l -> l | None -> [] in
          Hashtbl.replace preds m (n :: cur))
        (succs n))
    nodes;
  fun n -> match Hashtbl.find_opt preds n with Some l -> l | None -> []

(* Iterative Tarjan, so deep call chains cannot overflow the OCaml
   stack.  Components come out in reverse topological order of the
   condensation: every edge from an emitted component targets an
   already-emitted one (successors first). *)
let sccs ~nodes ~succs =
  let node_set = Hashtbl.create (max 16 (2 * List.length nodes)) in
  List.iter (fun n -> Hashtbl.replace node_set n ()) nodes;
  let index = Hashtbl.create 256 in
  let lowlink = Hashtbl.create 256 in
  let on_stack = Hashtbl.create 256 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let visit v0 =
    if not (Hashtbl.mem index v0) then begin
      let frames = Stack.create () in
      let open_node v =
        Hashtbl.replace index v !counter;
        Hashtbl.replace lowlink v !counter;
        incr counter;
        stack := v :: !stack;
        Hashtbl.replace on_stack v ();
        Stack.push (v, ref (List.filter (Hashtbl.mem node_set) (succs v))) frames
      in
      open_node v0;
      while not (Stack.is_empty frames) do
        let u, rest = Stack.top frames in
        match !rest with
        | w :: tl ->
            rest := tl;
            if not (Hashtbl.mem index w) then open_node w
            else if Hashtbl.mem on_stack w then
              Hashtbl.replace lowlink u (min (Hashtbl.find lowlink u) (Hashtbl.find index w))
        | [] ->
            ignore (Stack.pop frames);
            if Hashtbl.find lowlink u = Hashtbl.find index u then begin
              let scc = ref [] in
              let break = ref false in
              while not !break do
                match !stack with
                | [] -> break := true
                | w :: tl ->
                    stack := tl;
                    Hashtbl.remove on_stack w;
                    scc := w :: !scc;
                    if w = u then break := true
              done;
              out := !scc :: !out
            end;
            (match Stack.top_opt frames with
            | Some (p, _) ->
                Hashtbl.replace lowlink p (min (Hashtbl.find lowlink p) (Hashtbl.find lowlink u))
            | None -> ())
      done
    end
  in
  List.iter visit nodes;
  List.rev !out

(* ---- call graph ------------------------------------------------------ *)

module Callgraph = struct
  type site = { site_addr : int; site_ret : int; targets : int list }

  type node = {
    entry : int;
    label : string;
    mutable calls : site list;
    mutable tails : site list;
  }

  type t = {
    nodes : (int, node) Hashtbl.t;
    owner_of : int -> int;
    icall_targets : int list;
    ret_delivery : (int, int list) Hashtbl.t;
  }

  let owner t addr = t.owner_of addr
  let icall_targets t = t.icall_targets
  let node t key = Hashtbl.find_opt t.nodes key

  let nodes t =
    Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes []
    |> List.sort (fun a b -> compare a.entry b.entry)

  let ret_targets t key =
    match Hashtbl.find_opt t.ret_delivery key with Some l -> l | None -> []

  let build cfg =
    let img = Cfg.image cfg in
    let owner_of addr =
      match Image.function_containing img addr with
      | Some s -> s.Image.addr
      (* Low-region code is 4-byte jmp slots (vectors, icall
         trampolines); each slot is its own node. *)
      | None -> addr land lnot 3
    in
    let label_of key =
      match Image.function_containing img key with
      | Some s -> s.Image.name
      | None -> Printf.sprintf "low:0x%x" key
    in
    let nodes = Hashtbl.create 256 in
    let get key =
      match Hashtbl.find_opt nodes key with
      | Some n -> n
      | None ->
          let n = { entry = key; label = label_of key; calls = []; tails = [] } in
          Hashtbl.replace nodes key n;
          n
    in
    let icall_targets =
      List.sort_uniq compare
        (List.filter_map
           (fun loc ->
             match Cfg.funptr_target img loc with
             | Some t when Cfg.in_exec img t -> Some t
             | _ -> None)
           img.Image.funptr_locs)
    in
    Cfg.iter_reachable cfg (fun addr insn size ->
        let key = owner_of addr in
        let n = get key in
        match Isa.transfer insn with
        | Isa.Transfer.Call ->
            let t =
              match insn with
              | Isa.Call a -> 2 * a
              | Isa.Rcall off -> addr + size + (2 * off)
              | _ -> assert false
            in
            n.calls <- { site_addr = addr; site_ret = addr + size; targets = [ t ] } :: n.calls
        | Isa.Transfer.Indirect_call ->
            n.calls <-
              { site_addr = addr; site_ret = addr + size; targets = icall_targets } :: n.calls
        | Isa.Transfer.Jump ->
            let t =
              match insn with
              | Isa.Jmp a -> 2 * a
              | Isa.Rjmp off -> addr + size + (2 * off)
              | _ -> assert false
            in
            if owner_of t <> key then
              n.tails <- { site_addr = addr; site_ret = addr + size; targets = [ t ] } :: n.tails
        | Isa.Transfer.Indirect_jump ->
            let ts = List.filter (fun t -> owner_of t <> key) icall_targets in
            if ts <> [] then
              n.tails <- { site_addr = addr; site_ret = addr + size; targets = ts } :: n.tails
        | Isa.Transfer.Straight | Isa.Transfer.Branch | Isa.Transfer.Skip | Isa.Transfer.Return | Isa.Transfer.Stop -> ());
    (* Where the [ret]s executing inside a node's region deliver: the
       continuation of every call site targeting it, closed over tail
       jumps — a ret reached through [g] tail-jumping into [f] also
       returns to g's callers. *)
    let delivery = Hashtbl.create 256 in
    let add key addr =
      let cur = match Hashtbl.find_opt delivery key with Some l -> l | None -> [] in
      if List.mem addr cur then false
      else begin
        Hashtbl.replace delivery key (addr :: cur);
        true
      end
    in
    Hashtbl.iter
      (fun _ g ->
        List.iter
          (fun s -> List.iter (fun t -> ignore (add (owner_of t) s.site_ret)) s.targets)
          g.calls)
      nodes;
    let changed = ref true in
    while !changed do
      changed := false;
      Hashtbl.iter
        (fun gkey g ->
          let gdel = match Hashtbl.find_opt delivery gkey with Some l -> l | None -> [] in
          if gdel <> [] then
            List.iter
              (fun s ->
                List.iter
                  (fun t ->
                    let fkey = owner_of t in
                    if fkey <> gkey then
                      List.iter (fun a -> if add fkey a then changed := true) gdel)
                  s.targets)
              g.tails)
        nodes
    done;
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) delivery [] in
    List.iter
      (fun k -> Hashtbl.replace delivery k (List.sort compare (Hashtbl.find delivery k)))
      keys;
    { nodes; owner_of; icall_targets; ret_delivery = delivery }
end
