test/test_security.ml: Alcotest Float Helpers List Mavr_bignum Mavr_core QCheck
