type kind = Point | Span_begin | Span_end

type event = { cycle : int; kind : kind; name : string; value : int }

(* Struct-of-arrays ring: the writer sits on the superblock engine's
   per-block tap path, so recording must not allocate — four stores and
   three counter updates, with the [event] records the readers see built
   on demand.  [buf.(head)] is the slot the next event lands in, so once
   full the writer overwrites the oldest entry in O(1) — the flight
   recorder must cost the same whether it has run for a thousand cycles
   or a billion. *)
type t = {
  cycles : int array;
  kinds : int array; (* kind_code below *)
  names : string array;
  values : int array;
  mutable head : int;
  mutable len : int;
  mutable total : int;
}

let kind_code = function Point -> 0 | Span_begin -> 1 | Span_end -> 2
let kind_of_code = function 1 -> Span_begin | 2 -> Span_end | _ -> Point

let create ~capacity =
  if capacity <= 0 then invalid_arg "Telemetry.Recorder.create: capacity must be positive";
  {
    cycles = Array.make capacity 0;
    kinds = Array.make capacity 0;
    names = Array.make capacity "";
    values = Array.make capacity 0;
    head = 0;
    len = 0;
    total = 0;
  }

let capacity t = Array.length t.cycles
let length t = t.len
let total_recorded t = t.total

let[@inline] push t ~cycle ~kindc ~value name =
  let cap = Array.length t.cycles in
  let h = t.head in
  Array.unsafe_set t.cycles h cycle;
  Array.unsafe_set t.kinds h kindc;
  Array.unsafe_set t.names h name;
  Array.unsafe_set t.values h value;
  t.head <- (if h + 1 = cap then 0 else h + 1);
  if t.len < cap then t.len <- t.len + 1;
  t.total <- t.total + 1

(* The hot-path entry: all arguments required, so no optional-argument
   boxing on the per-block tap. *)
let point t ~cycle ~value name = push t ~cycle ~kindc:0 ~value name
let record t ~cycle ?(kind = Point) ?(value = 0) name = push t ~cycle ~kindc:(kind_code kind) ~value name
let span_begin t ~cycle ?(value = 0) name = push t ~cycle ~kindc:1 ~value name
let span_end t ~cycle ?(value = 0) name = push t ~cycle ~kindc:2 ~value name

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.total <- 0

(* [i]th retained event, oldest first. *)
let event t i =
  let cap = Array.length t.cycles in
  let j = (t.head - t.len + i + cap) mod cap in
  { cycle = t.cycles.(j); kind = kind_of_code t.kinds.(j); name = t.names.(j); value = t.values.(j) }

let events t = List.init t.len (event t)

let kind_name = function Point -> "point" | Span_begin -> "begin" | Span_end -> "end"

let pp_event fmt e =
  match e.kind with
  | Point -> Format.fprintf fmt "[%10d] %-24s 0x%x" e.cycle e.name e.value
  | Span_begin -> Format.fprintf fmt "[%10d] >> %-21s %d" e.cycle e.name e.value
  | Span_end -> Format.fprintf fmt "[%10d] << %-21s %d" e.cycle e.name e.value

let pp_dump fmt t =
  let dropped = t.total - t.len in
  if dropped > 0 then
    Format.fprintf fmt "  (%d earlier events overwritten; ring capacity %d)@." dropped
      (capacity t);
  List.iter (fun e -> Format.fprintf fmt "  %a@." pp_event e) (events t)

let event_to_json e =
  Json.Obj
    [
      ("cycle", Json.Int e.cycle);
      ("kind", Json.String (kind_name e.kind));
      ("name", Json.String e.name);
      ("value", Json.Int e.value);
    ]

let to_json t =
  Json.Obj
    [
      ("capacity", Json.Int (capacity t));
      ("total_recorded", Json.Int t.total);
      ("events", Json.List (List.map event_to_json (events t)));
    ]
