lib/mavr/rop.ml: Array Buffer Char Gadget List Mavr_avr Mavr_firmware Mavr_mavlink Mavr_obj String
