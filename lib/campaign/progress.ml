module Json = Mavr_telemetry.Json

type t = {
  sink : string -> unit;
  interval_s : float;
  started : float;
  done_ : int Atomic.t;
  total : int Atomic.t;
  seq : int Atomic.t;
  lock : Mutex.t;  (* serializes sink writes; held only via try_lock on the hot path *)
  mutable last_emit : float;  (* guarded by [lock] *)
  mutable providers : (unit -> (string * Json.t) list) list;
}

let create ?(interval_s = 0.5) ~sink () =
  if interval_s < 0.0 then invalid_arg "Campaign.Progress.create: negative interval";
  {
    sink;
    interval_s;
    started = Clock.wall ();
    done_ = Atomic.make 0;
    total = Atomic.make 0;
    seq = Atomic.make 0;
    lock = Mutex.create ();
    last_emit = neg_infinity;
    providers = [];
  }

let add_total t n =
  if n < 0 then invalid_arg "Campaign.Progress.add_total: negative count";
  ignore (Atomic.fetch_and_add t.total n)

let on_heartbeat t f = t.providers <- t.providers @ [ f ]
let tasks_done t = Atomic.get t.done_
let total t = Atomic.get t.total
let lines_emitted t = Atomic.get t.seq

(* Caller holds [t.lock]. *)
let emit_locked t ~reason =
  let now = Clock.wall () in
  let d = Atomic.get t.done_ and total = Atomic.get t.total in
  let elapsed = now -. t.started in
  let rate = if elapsed > 0.0 then float_of_int d /. elapsed else 0.0 in
  let eta = if rate > 0.0 then float_of_int (max 0 (total - d)) /. rate else 0.0 in
  let detail = List.concat_map (fun f -> f ()) t.providers in
  let seq = Atomic.fetch_and_add t.seq 1 + 1 in
  t.last_emit <- now;
  t.sink
    (Json.to_string
       (Json.Obj
          ([
             ("seq", Json.Int seq);
             ("reason", Json.String reason);
             ("wall_s", Json.Float elapsed);
             ("done", Json.Int d);
             ("total", Json.Int total);
             ("rate_per_s", Json.Float rate);
             ("eta_s", Json.Float eta);
           ]
          @ detail)))

let task_done t =
  let d = Atomic.fetch_and_add t.done_ 1 + 1 in
  (* try_lock: if another domain is mid-emission, skip — its line will
     carry this completion anyway (counters are read at emit time). *)
  if Mutex.try_lock t.lock then
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        let now = Clock.wall () in
        if d >= Atomic.get t.total || now -. t.last_emit >= t.interval_s then
          emit_locked t ~reason:"heartbeat")

let emit t ~reason =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> emit_locked t ~reason)
