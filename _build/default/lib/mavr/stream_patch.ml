module Isa = Mavr_avr.Isa
module Decode = Mavr_avr.Decode
module Opcode = Mavr_avr.Opcode
module Image = Mavr_obj.Image
module Symtab = Mavr_obj.Symtab

type stats = { peak_working_set : int; bytes_read : int; pages_emitted : int }

let run ~code_size ~read ~(meta : Symtab.meta) ~order ~page_bytes ~emit_page =
  let starts = Array.of_list meta.func_addrs in
  let n = Array.length starts in
  if Array.length order <> n then invalid_arg "Stream_patch.run: order length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then invalid_arg "Stream_patch.run: not a permutation";
      seen.(i) <- true)
    order;
  let size_of i = (if i + 1 < n then starts.(i + 1) else meta.text_end) - starts.(i) in
  (* Assign new start addresses by walking the permutation. *)
  let new_start = Array.make n 0 in
  let cursor = ref meta.text_start in
  Array.iter
    (fun i ->
      new_start.(i) <- !cursor;
      cursor := !cursor + size_of i)
    order;
  assert (!cursor = meta.text_end);
  let funptrs = Array.of_list meta.funptr_locs in
  (* ---- working-set ledger ---- *)
  let table_bytes = (4 * n * 2) + (4 * Array.length funptrs) in
  let peak = ref 0 in
  let note_ws transient = peak := max !peak (table_bytes + page_bytes + transient) in
  note_ws 0;
  let bytes_read = ref 0 in
  let read ~pos ~len =
    bytes_read := !bytes_read + len;
    read ~pos ~len
  in
  (* ---- address remapping (binary search over old starts) ---- *)
  let in_text addr = addr >= meta.text_start && addr < meta.text_end in
  let map_addr addr =
    if not (in_text addr) then addr
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if starts.(mid) <= addr then lo := mid else hi := mid - 1
      done;
      let i = !lo in
      if addr >= starts.(i) + size_of i then
        raise (Patch.Unpatchable (Printf.sprintf "target 0x%x in no function" addr));
      new_start.(i) + (addr - starts.(i))
    end
  in
  (* ---- page-buffered emission ---- *)
  let page = Bytes.make page_bytes '\xff' in
  let page_fill = ref 0 in
  let page_addr = ref 0 in
  let pages = ref 0 in
  let flush () =
    if !page_fill > 0 then begin
      emit_page ~page_addr:!page_addr (Bytes.to_string page);
      incr pages;
      Bytes.fill page 0 page_bytes '\xff';
      page_addr := !page_addr + page_bytes;
      page_fill := 0
    end
  in
  let out_byte b =
    Bytes.set page !page_fill (Char.chr (b land 0xFF));
    incr page_fill;
    if !page_fill = page_bytes then flush ()
  in
  let out_string s = String.iter (fun c -> out_byte (Char.code c)) s in
  (* ---- one executable block: decode, rewrite, emit ---- *)
  let patch_block ~old_base ~block ~block_lo ~block_hi =
    note_ws (String.length block);
    let len = String.length block in
    let pos = ref 0 in
    while !pos + 1 < len do
      let insn, size = Decode.decode_bytes block !pos in
      let old_addr = old_base + !pos in
      (match insn with
      | Isa.Call a | Isa.Jmp a when in_text (a * 2) ->
          let target' = map_addr (a * 2) in
          let insn' =
            match insn with Isa.Call _ -> Isa.Call (target' / 2) | _ -> Isa.Jmp (target' / 2)
          in
          out_string (Opcode.encode_bytes insn')
      | Isa.Rcall k | Isa.Rjmp k ->
          let target = old_addr + 2 + (k * 2) in
          if target < block_lo || target >= block_hi then
            raise
              (Patch.Unpatchable
                 (Printf.sprintf "relative transfer at 0x%x leaves its block (relaxed image?)"
                    old_addr));
          out_string (String.sub block !pos size)
      | Isa.Brbs (_, k) | Isa.Brbc (_, k) ->
          let target = old_addr + 2 + (k * 2) in
          if target < block_lo || target >= block_hi then
            raise (Patch.Unpatchable (Printf.sprintf "branch at 0x%x leaves its block" old_addr));
          out_string (String.sub block !pos size)
      | _ -> out_string (String.sub block !pos size));
      pos := !pos + size
    done;
    (* A trailing odd byte (possible only in data-ish blocks). *)
    if !pos < len then out_byte (Char.code block.[!pos])
  in
  (* ---- non-executable region: copy with function-pointer fixups ---- *)
  let copy_data_region ~lo ~hi =
    let chunk = page_bytes in
    let pos = ref lo in
    while !pos < hi do
      let len = min chunk (hi - !pos) in
      let s = read ~pos:!pos ~len in
      note_ws len;
      let b = Bytes.of_string s in
      Array.iter
        (fun loc ->
          if loc >= !pos && loc + 1 < !pos + len then begin
            let off = loc - !pos in
            let w = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8) in
            if in_text (w * 2) then begin
              let w' = map_addr (w * 2) / 2 in
              Bytes.set b off (Char.chr (w' land 0xFF));
              Bytes.set b (off + 1) (Char.chr ((w' lsr 8) land 0xFF))
            end
          end
          else if loc = !pos + len - 1 then
            (* A pointer straddling a chunk boundary would need carry-over
               state; the preprocessed layout keeps pointers aligned, so
               treat this as a hard error rather than corrupt silently. *)
            raise (Patch.Unpatchable (Printf.sprintf "function pointer at 0x%x straddles a chunk" loc)))
        funptrs;
      out_string (Bytes.to_string b);
      pos := !pos + len
    done
  in
  (* 1. interrupt-vector code (stays at address 0, targets remapped) *)
  let vec = read ~pos:0 ~len:meta.exec_low_end in
  patch_block ~old_base:0 ~block:vec ~block_lo:0 ~block_hi:meta.exec_low_end;
  (* 2. low rodata (vtable initializer etc.) *)
  copy_data_region ~lo:meta.exec_low_end ~hi:meta.text_start;
  (* 3. the text section, streamed function by function in new order *)
  Array.iter
    (fun i ->
      let block = read ~pos:starts.(i) ~len:(size_of i) in
      patch_block ~old_base:starts.(i) ~block ~block_lo:starts.(i)
        ~block_hi:(starts.(i) + size_of i))
    order;
  (* 4. everything after the text section *)
  copy_data_region ~lo:meta.text_end ~hi:code_size;
  flush ();
  { peak_working_set = !peak; bytes_read = !bytes_read; pages_emitted = !pages }

let randomize_image_rng ~rng (img : Image.t) ~page_bytes =
  let shuffle = Shuffle.draw ~rng img in
  let meta = Symtab.meta_of_image img in
  let buf = Buffer.create (Image.size img) in
  let stats =
    run ~code_size:(Image.size img)
      ~read:(fun ~pos ~len -> String.sub img.code pos len)
      ~meta ~order:shuffle.Shuffle.order ~page_bytes
      ~emit_page:(fun ~page_addr:_ page -> Buffer.add_string buf page)
  in
  (* Trim the final page padding back to the image size. *)
  let code = Buffer.sub buf 0 (Image.size img) in
  let symbols =
    List.sort
      (fun (a : Image.symbol) b -> compare a.addr b.addr)
      (List.mapi
         (fun i (s : Image.symbol) -> { s with addr = shuffle.Shuffle.new_addr.(i) })
         img.symbols)
  in
  ({ img with code; symbols }, stats)

let randomize_image ~seed img ~page_bytes =
  randomize_image_rng ~rng:(Mavr_prng.Splitmix.create ~seed) img ~page_bytes
