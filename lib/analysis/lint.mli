(** Firmware image lint: structural invariants every image the generator
    and the randomizer emit must satisfy.

    Each violation is a typed finding carrying the offending address, the
    target (when the invariant is about a transfer), and a short
    disassembly context.  The invariants:

    - {e transfer targets}: every direct [call]/[jmp]/[rcall]/[rjmp]/
      conditional-branch target of a reachable instruction lands on a
      decodable instruction boundary inside an executable region (and a
      skip instruction's skip target stays in bounds);
    - {e vector table}: each hardware vector slot (4-byte granularity,
      the way the interrupt unit indexes it) holds a [jmp] to a function
      start;
    - {e function pointers}: each preprocessed vtable/jump-table entry
      stays inside the text section and points at a function start;
    - {e stack-pointer writes}: [out SPL/SPH] occurs only in whitelisted
      idioms — startup initialization ([ldi]-fed), frame allocation
      (SP read back via [in] then adjusted), or the epilogue
      teardown/pivot shape (paired writes followed by a pop run and
      [ret], the Fig. 4 idiom).  Anything else is a stray SP write, the
      primitive a stack-pivot attack needs. *)

type kind =
  | Target_out_of_bounds
  | Target_undecodable
  | Target_mid_instruction  (** lands inside another reachable instruction *)
  | Vector_not_jmp
  | Vector_target_not_function
  | Funptr_out_of_bounds
  | Funptr_not_function
  | Stray_sp_write

type finding = {
  kind : kind;
  addr : int;  (** offending instruction (or table-entry flash offset) *)
  target : int option;
  detail : string;
  context : string;  (** short disassembly listing around [addr] *)
}

val kind_name : kind -> string

(** [run ?cfg image] checks every invariant; [cfg] avoids re-recovering
    a CFG the caller already has.  An empty list means the image is
    lint-clean. *)
val run : ?cfg:Cfg.t -> Mavr_obj.Image.t -> finding list

val to_json : finding list -> Mavr_telemetry.Json.t
val pp_finding : Format.formatter -> finding -> unit
