(** The AVR instruction set, as an abstract syntax.

    This module defines the subset of the 8-bit AVR (megaAVR) instruction
    set implemented by the emulator, assembler and randomizer.  It covers
    every instruction the MAVR paper's attacks and defense depend on —
    long/short calls and jumps, the memory-mapped stack-pointer writes used
    by the [stk_move] gadget, the [std Y+q] stores and pop runs of the
    [write_mem] gadget — plus enough ALU/transfer/branch instructions to
    express realistic autopilot firmware.

    Conventions:
    - Registers are integers [0..31].
    - Program addresses attached to [Call]/[Jmp] are {e word} addresses
      (AVR program memory is addressed in 16-bit words).
    - [Rjmp]/[Rcall] and conditional branches carry {e signed word offsets}
      relative to the next instruction, exactly as encoded. *)

type reg = int
(** A general-purpose register number, [0..31]. *)

(** Pointer-register addressing modes for [Ld]/[St]. *)
type ptr =
  | X        (** [X] *)
  | X_inc    (** [X+] post-increment *)
  | X_dec    (** [-X] pre-decrement *)
  | Y_inc    (** [Y+] *)
  | Y_dec    (** [-Y] *)
  | Z_inc    (** [Z+] *)
  | Z_dec    (** [-Z] *)

(** Base register for displacement addressing ([Ldd]/[Std]). *)
type base = Y | Z

type t =
  | Nop
  | Movw of reg * reg          (** [movw Rd,Rr]: copy register pair; both even. *)
  | Ldi of reg * int           (** [ldi Rd,K]: d in 16..31, K in 0..255. *)
  | Mov of reg * reg
  | Add of reg * reg
  | Adc of reg * reg
  | Sub of reg * reg
  | Sbc of reg * reg
  | And of reg * reg
  | Or of reg * reg
  | Eor of reg * reg
  | Cp of reg * reg
  | Cpc of reg * reg
  | Cpse of reg * reg          (** compare, skip next instruction if equal *)
  | Mul of reg * reg           (** result to r1:r0 *)
  | Subi of reg * int          (** d in 16..31 *)
  | Sbci of reg * int
  | Andi of reg * int
  | Ori of reg * int
  | Cpi of reg * int
  | Com of reg
  | Neg of reg
  | Inc of reg
  | Dec of reg
  | Lsr of reg
  | Ror of reg
  | Asr of reg
  | Swap of reg
  | Push of reg
  | Pop of reg
  | Ret
  | Reti
  | Icall                      (** call word address in Z *)
  | Ijmp
  | Call of int                (** absolute word address, 0..2^22-1; 2 words *)
  | Jmp of int                 (** absolute word address; 2 words *)
  | Rcall of int               (** signed word offset, -2048..2047 *)
  | Rjmp of int
  | Brbs of int * int          (** branch if SREG bit [b] set; signed offset -64..63 *)
  | Brbc of int * int          (** branch if SREG bit [b] clear *)
  | In of reg * int            (** I/O address 0..63 *)
  | Out of int * reg
  | Lds of reg * int           (** 16-bit data address; 2 words *)
  | Sts of int * reg
  | Ldd of reg * base * int    (** displacement 0..63 *)
  | Std of base * int * reg
  | Ld of reg * ptr
  | St of ptr * reg
  | Adiw of reg * int          (** d in {24,26,28,30}, K in 0..63 *)
  | Sbiw of reg * int
  | Lpm0                       (** [lpm]: r0 <- flash[Z] *)
  | Lpm of reg * bool          (** [lpm Rd, Z] / [lpm Rd, Z+] when flag *)
  | Sbi of int * int           (** set bit in I/O 0..31 *)
  | Cbi of int * int
  | Sbic of int * int          (** skip if I/O bit clear *)
  | Sbis of int * int
  | Bld of reg * int           (** load SREG.T into register bit *)
  | Bst of reg * int           (** store register bit into SREG.T *)
  | Sbrc of reg * int          (** skip if register bit clear *)
  | Sbrs of reg * int          (** skip if register bit set *)
  | Elpm0                      (** [elpm]: r0 <- flash[RAMPZ:Z] *)
  | Elpm of reg * bool         (** [elpm Rd, Z] / [elpm Rd, Z+] *)
  | Bset of int                (** set SREG bit (sei = bset 7) *)
  | Bclr of int
  | Wdr
  | Sleep
  | Break
  | Data of int                (** an undecodable 16-bit word kept verbatim *)

val equal : t -> t -> bool

(** Size of the instruction in 16-bit program words (1 or 2). *)
val size_words : t -> int

(** [is_useful_for_gadget i] is true when [i] performs work an attacker can
    exploit inside a ROP gadget (stores, I/O writes, register pops and
    moves), used by the gadget classifier. *)
val is_useful_for_gadget : t -> bool

(** Coarse control-transfer class of an instruction — the per-opcode
    transfer summary the static analyses key successor construction and
    call-graph edges on.  Its constructors live in their own namespace so
    [Transfer.Call] does not shadow the [Call] instruction. *)
module Transfer : sig
  type t =
    | Straight  (** falls through to the next instruction only *)
    | Branch  (** conditional branch: taken edge + fallthrough *)
    | Jump  (** unconditional [jmp]/[rjmp] *)
    | Call  (** [call]/[rcall]: callee edge + return continuation *)
    | Indirect_jump  (** [ijmp] *)
    | Indirect_call  (** [icall] *)
    | Skip  (** [cpse]/[sbic]/[sbis]/[sbrc]/[sbrs] *)
    | Return  (** [ret]/[reti] *)
    | Stop  (** [break] and undecodable words *)
end

val transfer : t -> Transfer.t

(** [stack_push_bytes ~pc_bytes i] — bytes the instruction pushes onto
    the hardware stack: 1 for [push], [pc_bytes] (3 on the ATmega2560)
    for the return address of [call]/[rcall]/[icall], 0 otherwise.
    Interrupt entry pushes [pc_bytes] too, but that is an event, not an
    instruction — account for it separately. *)
val stack_push_bytes : pc_bytes:int -> t -> int

(** [stack_pop_bytes ~pc_bytes i] — bytes popped: 1 for [pop],
    [pc_bytes] for [ret]/[reti], 0 otherwise. *)
val stack_pop_bytes : pc_bytes:int -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** SREG bit numbers. *)
module Flag : sig
  val c : int
  val z : int
  val n : int
  val v : int
  val s : int
  val h : int
  val t : int
  val i : int
end
