lib/mavr/lifetime.mli:
