(* Coverage for the host-side inspection tools: the linear-sweep
   disassembler, the execution/stack tracer, and the serial timing model's
   edges. *)

module Cpu = Mavr_avr.Cpu
module Isa = Mavr_avr.Isa
module Opcode = Mavr_avr.Opcode
module Disasm = Mavr_avr.Disasm
module Trace = Mavr_avr.Trace
module Serial = Mavr_core.Serial

let program insns = String.concat "" (List.map Opcode.encode_bytes insns)

(* Naive substring check (avoids a Str dependency). *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_sweep_addresses_and_sizes () =
  let code = program Isa.[ Nop; Call 7; Ldi (16, 1); Ret ] in
  let lines = Disasm.sweep code in
  let expect = [ (0, 2); (2, 4); (6, 2); (8, 2) ] in
  Alcotest.(check int) "line count" (List.length expect) (List.length lines);
  List.iter2
    (fun (addr, size) (l : Disasm.line) ->
      Alcotest.(check int) "addr" addr l.byte_addr;
      Alcotest.(check int) "size" size l.size_bytes)
    expect lines

let test_sweep_window () =
  let code = program Isa.[ Nop; Nop; Push 1; Pop 1; Ret ] in
  let lines = Disasm.sweep ~pos:4 ~len:4 code in
  Alcotest.(check int) "two instructions in window" 2 (List.length lines);
  match lines with
  | [ a; b ] ->
      Alcotest.(check bool) "push decoded" true (a.insn = Isa.Push 1);
      Alcotest.(check bool) "pop decoded" true (b.insn = Isa.Pop 1)
  | _ -> Alcotest.fail "unexpected shape"

let test_listing_format () =
  let code = program Isa.[ Out (0x3E, 29); Ret ] in
  let text = Disasm.listing code in
  Alcotest.(check bool) "contains mnemonic" true (contains text "out 0x3e, r29")

let test_trace_recorder () =
  let cpu = Cpu.create () in
  Cpu.load_program cpu (program Isa.[ Ldi (16, 1); Ldi (17, 2); Push 16; Break ]);
  let r = Trace.recorder ~limit:2 in
  for _ = 1 to 4 do
    Trace.step_traced r cpu
  done;
  let events = Trace.events r in
  Alcotest.(check int) "ring keeps last 2" 2 (List.length events);
  match events with
  | [ a; b ] ->
      Alcotest.(check bool) "push recorded" true (a.insn = Isa.Push 16);
      Alcotest.(check bool) "break recorded" true (b.insn = Isa.Break);
      Alcotest.(check bool) "sp before push > sp after" true (a.sp_before = b.sp_before + 1)
  | _ -> Alcotest.fail "unexpected events"

let test_trace_stops_at_halt () =
  let cpu = Cpu.create () in
  Cpu.load_program cpu (program Isa.[ Break ]);
  let r = Trace.recorder ~limit:8 in
  for _ = 1 to 5 do
    Trace.step_traced r cpu
  done;
  Alcotest.(check int) "one event before halt" 1 (List.length (Trace.events r))

let test_snapshot_contents () =
  let cpu = Cpu.create () in
  Cpu.load_program cpu (program Isa.[ Break ]);
  Cpu.data_poke cpu 0x700 0xAB;
  Cpu.data_poke cpu 0x701 0xCD;
  let s = Trace.snapshot cpu ~label:"test" ~window_start:0x700 ~window_len:2 in
  Alcotest.(check string) "bytes" "\xAB\xCD" s.bytes;
  let rendered = Format.asprintf "%a" Trace.pp_snapshot s in
  Alcotest.(check bool) "renders address" true (contains rendered "0x000700");
  Alcotest.(check bool) "renders hex bytes" true (contains rendered "0xAB 0xCD")

(* ---- serial model edges ---- *)

let test_serial_zero_bytes () =
  Alcotest.(check (float 0.001)) "no bytes, no transfer time" 0.0
    (Serial.transfer_ms Serial.prototype 0)

let test_serial_monotone () =
  let t1 = Serial.programming_ms Serial.prototype 1000 in
  let t2 = Serial.programming_ms Serial.prototype 2000 in
  Alcotest.(check bool) "monotone in size" true (t2 > t1)

let test_serial_page_rounding () =
  (* 1 byte still programs a whole page. *)
  let one = Serial.flash_ms Serial.prototype 1 in
  let page = Serial.flash_ms Serial.prototype Serial.prototype.page_bytes in
  Alcotest.(check (float 0.001)) "page granularity" page one

let test_serial_crossover () =
  (* Somewhere between the prototype and production baud rates the
     bottleneck flips from the wire to the flash writes. *)
  let bytes = 256 * 1024 in
  let wire_bound = Serial.transfer_ms Serial.prototype bytes in
  let flash_bound = Serial.flash_ms Serial.prototype bytes in
  Alcotest.(check bool) "prototype is wire-bound" true (wire_bound > flash_bound);
  let wire_prod = Serial.transfer_ms Serial.production bytes in
  Alcotest.(check bool) "production is flash-bound" true (wire_prod < flash_bound)

let () =
  Alcotest.run "disasm-trace"
    [
      ( "disasm",
        [
          Alcotest.test_case "sweep addresses/sizes" `Quick test_sweep_addresses_and_sizes;
          Alcotest.test_case "windowed sweep" `Quick test_sweep_window;
          Alcotest.test_case "listing format" `Quick test_listing_format;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring recorder" `Quick test_trace_recorder;
          Alcotest.test_case "stops at halt" `Quick test_trace_stops_at_halt;
          Alcotest.test_case "snapshot contents" `Quick test_snapshot_contents;
        ] );
      ( "serial",
        [
          Alcotest.test_case "zero bytes" `Quick test_serial_zero_bytes;
          Alcotest.test_case "monotone" `Quick test_serial_monotone;
          Alcotest.test_case "page rounding" `Quick test_serial_page_rounding;
          Alcotest.test_case "wire/flash crossover" `Quick test_serial_crossover;
        ] );
    ]
