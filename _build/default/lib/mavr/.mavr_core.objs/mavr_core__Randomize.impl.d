lib/mavr/randomize.ml: List Mavr_obj Mavr_prng Patch Shuffle
