lib/mavlink/messages.ml: Array Buffer Char Int32 List String
