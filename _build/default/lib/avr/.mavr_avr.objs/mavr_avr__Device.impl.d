lib/avr/device.ml: Bytes Char String
