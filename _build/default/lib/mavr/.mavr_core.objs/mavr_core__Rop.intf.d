lib/mavr/rop.mli: Gadget Mavr_firmware Mavr_obj
