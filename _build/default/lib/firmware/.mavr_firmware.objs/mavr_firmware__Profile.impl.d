lib/firmware/profile.ml: Format Printf
