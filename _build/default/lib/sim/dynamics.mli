(** Minimal fixed-wing UAV kinematics.

    Supplies the physical truth the sensor models sample.  The point of
    the simulation is the {e observability} argument of the paper — what
    a ground station can and cannot see during an attack — so the
    dynamics are deliberately simple: first-order attitude response to
    commanded rates plus slow cruise drift. *)

type state = {
  time_s : float;
  roll : float;  (** radians *)
  pitch : float;
  yaw : float;
  roll_rate : float;  (** rad/s *)
  pitch_rate : float;
  yaw_rate : float;
  altitude_m : float;
  airspeed_ms : float;
}

val initial : state

(** [step state ~dt] advances the physics by [dt] seconds: a gentle
    banked-circle cruise pattern. *)
val step : state -> dt:float -> state

(** [gyro_x_raw state] is the roll-rate as the 16-bit raw unit the
    ATmega-attached IMU reports (1000 LSB per rad/s, two's complement). *)
val gyro_x_raw : state -> int

val pp : Format.formatter -> state -> unit
