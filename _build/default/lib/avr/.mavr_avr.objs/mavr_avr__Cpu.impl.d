lib/avr/cpu.ml: Buffer Char Decode Device Flag Format Isa List Memory Queue String
