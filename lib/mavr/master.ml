module Cpu = Mavr_avr.Cpu
module Image = Mavr_obj.Image
module Symtab = Mavr_obj.Symtab
module Flash = Mavr_avr.Device.External_flash
module Rng = Mavr_prng.Splitmix

let src = Logs.Src.create "mavr.master" ~doc:"MAVR master processor"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  link : Serial.t;
  randomize_every_boots : int;
  watchdog_window_cycles : int;
  seed : int;
}

let default_config =
  {
    link = Serial.prototype;
    randomize_every_boots = 1;
    watchdog_window_cycles = 60_000;
    seed = 0xD15EA5E;
  }

type event =
  | Booted of { boot : int; randomized : bool; overhead_ms : float }
  | Attack_detected of { at_cycles : int; reason : string }
  | Reflashed of { generation : int; overhead_ms : float }

let pp_event fmt = function
  | Booted { boot; randomized; overhead_ms } ->
      Format.fprintf fmt "boot #%d (%s, %.0f ms)" boot
        (if randomized then "randomized" else "cached layout")
        overhead_ms
  | Attack_detected { at_cycles; reason } ->
      Format.fprintf fmt "failed attack detected at cycle %d (%s)" at_cycles reason
  | Reflashed { generation; overhead_ms } ->
      Format.fprintf fmt "re-randomized: generation %d (%.0f ms)" generation overhead_ms

(* Telemetry bindings: histograms for the Table II phase decomposition
   (microsecond samples per flash session) plus the shared flight
   recorder for span events.  Optional — a master without telemetry
   attached pays nothing. *)
type telemetry = {
  recorder : Mavr_telemetry.Recorder.t;
  phase_patch : Mavr_telemetry.Metrics.histogram;
  phase_serial : Mavr_telemetry.Metrics.histogram;
  phase_pages : Mavr_telemetry.Metrics.histogram;
  phase_total : Mavr_telemetry.Metrics.histogram;
  flash_retries : Mavr_telemetry.Metrics.histogram;
}

type t = {
  config : config;
  ext_flash : Flash.t;
  rng : Rng.t;
  mutable boots : int;
  mutable reflashes : int;
  mutable last_overhead_ms : float;
  mutable current : Image.t option;
  mutable events : event list;
  mutable attacks : int;
  mutable pages_programmed : int;
  mutable peak_ws : int;
  mutable tel : telemetry option;
  mutable reflash_fault : Mavr_fault.Reflash.t option;
  mutable last_retries : int;
  mutable fallback_streams : int;
}

let create ?(config = default_config) () =
  {
    config;
    ext_flash = Flash.create ~bytes:(1 lsl 20);
    rng = Rng.create ~seed:config.seed;
    boots = 0;
    reflashes = 0;
    last_overhead_ms = 0.0;
    current = None;
    events = [];
    attacks = 0;
    pages_programmed = 0;
    peak_ws = 0;
    tel = None;
    reflash_fault = None;
    last_retries = 0;
    fallback_streams = 0;
  }

let set_reflash_faults t f = t.reflash_fault <- f

let attach_telemetry ?(prefix = "master") t ~registry ~recorder =
  let module M = Mavr_telemetry.Metrics in
  let name s = prefix ^ "." ^ s in
  M.sampled registry (name "boots") (fun () -> t.boots);
  M.sampled registry (name "reflashes") (fun () -> t.reflashes);
  M.sampled registry (name "attacks_detected") (fun () -> t.attacks);
  M.sampled registry (name "pages_programmed") (fun () -> t.pages_programmed);
  M.sampled registry (name "peak_working_set") (fun () -> t.peak_ws);
  M.sampled_counter registry (name "flash.fallback_streams") (fun () -> t.fallback_streams);
  t.tel <-
    Some
      {
        recorder;
        phase_patch = M.histogram registry (name "flash.patch_us");
        phase_serial = M.histogram registry (name "flash.serial_us");
        phase_pages = M.histogram registry (name "flash.page_write_us");
        phase_total = M.histogram registry (name "flash.total_us");
        flash_retries = M.histogram registry (name "flash.retries");
      }

let provision t image = Flash.program t.ext_flash (Symtab.to_hex image)

let stored_hex t = Flash.read t.ext_flash ~pos:0 ~len:(Flash.content_length t.ext_flash)

let read_stored_image t =
  let hex = stored_hex t in
  if String.length hex = 0 then invalid_arg "Master: not provisioned";
  Symtab.of_hex hex

let startup_overhead_ms t bytes = Serial.programming_ms t.config.link bytes

(* Run the §VI-B3 streaming pipeline: draw a permutation, stream the
   patched binary page by page (here collected back into an image for the
   emulated application processor), and account for the pages programmed
   and the randomizer's working set. *)
let randomize_streaming t stored =
  let page_bytes = Mavr_avr.Device.atmega2560.flash_page_bytes in
  let image, stats = Stream_patch.randomize_image_rng ~rng:t.rng stored ~page_bytes in
  t.pages_programmed <- t.pages_programmed + stats.Stream_patch.pages_emitted;
  t.peak_ws <- max t.peak_ws stats.Stream_patch.peak_working_set;
  image

(* Stream the binary over the (possibly faulty) programming link and
   verify the received bytes against the stored image by CRC-16.  A
   failed verify forces a bounded number of re-streams; when those are
   exhausted the session falls back to a page-by-page acknowledged
   re-stream, modeled as delivering the clean bytes at the cost of one
   more full transfer.  Returns the bytes that land in flash plus the
   session's extra-transfer count (retries, +1 for a fallback). *)
let stream_verified t image =
  match t.reflash_fault with
  | None -> (image.Image.code, 0)
  | Some fault ->
      let module Reflash = Mavr_fault.Reflash in
      let page_bytes = Mavr_avr.Device.atmega2560.flash_page_bytes in
      let code = image.Image.code in
      let want = Reflash.crc16 code in
      let max_retries = (Reflash.params fault).Reflash.max_retries in
      let rec attempt n =
        let streamed, _ = Reflash.stream fault ~page_bytes code in
        if Reflash.crc16 streamed = want then (streamed, n)
        else if n < max_retries then begin
          Reflash.record_retry fault;
          attempt (n + 1)
        end
        else begin
          Reflash.record_fallback fault;
          t.fallback_streams <- t.fallback_streams + 1;
          (code, n + 1)
        end
      in
      attempt 0

(* Program the application processor: stream the (randomized) binary
   through the bootloader and restart it.  With telemetry attached, the
   session is decomposed into the Table II phases — patch compute, serial
   transfer, page writes — as spans on the flight recorder (stamped with
   the application clock at the moment the session starts; reflashing
   resets that clock) and microsecond histograms in the registry. *)
let program_app t ~app image =
  let bytes = Image.size image in
  let code, extra_transfers = stream_verified t image in
  t.last_retries <- extra_transfers;
  (match t.tel with
  | None -> ()
  | Some tel ->
      let module R = Mavr_telemetry.Recorder in
      let module M = Mavr_telemetry.Metrics in
      let us f = int_of_float (1000.0 *. f) in
      let link = t.config.link in
      (* Each verify failure repeats the transfer and page-write phases
         (the patch was computed once); the histograms and spans carry
         the session as actually paid for. *)
      let xfers = 1 + extra_transfers in
      let patch = us (Serial.patch_ms link bytes) in
      let serial = xfers * us (Serial.transfer_ms link bytes) in
      let pages = xfers * us (Serial.flash_ms link bytes) in
      let total =
        us (Serial.programming_ms link bytes)
        + (extra_transfers * us (Serial.transfer_ms link bytes +. Serial.flash_ms link bytes))
      in
      let cycle = Cpu.cycles app in
      R.span_begin tel.recorder ~cycle ~value:bytes "master.flash_session";
      R.record tel.recorder ~cycle ~value:patch "master.phase.patch";
      R.record tel.recorder ~cycle ~value:serial "master.phase.serial";
      R.record tel.recorder ~cycle ~value:pages "master.phase.page_writes";
      R.span_end tel.recorder ~cycle ~value:total "master.flash_session";
      M.observe tel.phase_patch patch;
      M.observe tel.phase_serial serial;
      M.observe tel.phase_pages pages;
      M.observe tel.phase_total total;
      M.observe tel.flash_retries extra_transfers);
  Cpu.load_program app code;
  t.reflashes <- t.reflashes + 1;
  t.last_overhead_ms <-
    startup_overhead_ms t bytes
    +. (float_of_int extra_transfers
       *. (Serial.transfer_ms t.config.link bytes +. Serial.flash_ms t.config.link bytes));
  t.current <- Some image

let boot t ~app =
  let stored = read_stored_image t in
  t.boots <- t.boots + 1;
  let randomize =
    t.config.randomize_every_boots <= 1
    || (t.boots - 1) mod t.config.randomize_every_boots = 0
    || t.current = None
  in
  let image =
    if randomize then randomize_streaming t stored
    else match t.current with Some img -> img | None -> assert false
  in
  program_app t ~app image;
  Log.info (fun m ->
      m "boot #%d: %s layout, %.0f ms startup overhead" t.boots
        (if randomize then "fresh randomized" else "cached")
        t.last_overhead_ms);
  t.events <- Booted { boot = t.boots; randomized = randomize; overhead_ms = t.last_overhead_ms } :: t.events

let current_image t =
  match t.current with Some img -> img | None -> invalid_arg "Master: application not booted"

let boots t = t.boots
let reflashes t = t.reflashes
let last_flash_retries t = t.last_retries
let fallback_streams t = t.fallback_streams
let last_overhead_ms t = t.last_overhead_ms
let events t = List.rev t.events
let attacks_detected t = t.attacks
let pages_programmed t = t.pages_programmed
let peak_working_set t = t.peak_ws

let rerandomize_after_attack t ~app ~reason =
  Log.warn (fun m -> m "failed attack detected (%s); re-randomizing" reason);
  t.attacks <- t.attacks + 1;
  (match t.tel with
  | None -> ()
  | Some tel ->
      Mavr_telemetry.Recorder.record tel.recorder ~cycle:(Cpu.cycles app)
        ~value:(Cpu.pc_byte_addr app) "master.attack_detected");
  t.events <- Attack_detected { at_cycles = Cpu.cycles app; reason } :: t.events;
  let stored = read_stored_image t in
  let image = randomize_streaming t stored in
  program_app t ~app image;
  t.events <- Reflashed { generation = t.reflashes; overhead_ms = t.last_overhead_ms } :: t.events

let check_and_recover t ~app =
  match Cpu.halted app with
  | Some h ->
      rerandomize_after_attack t ~app ~reason:(Format.asprintf "%a" Cpu.pp_halt h);
      true
  | None ->
      if Cpu.cycles app - Cpu.last_feed_cycles app > t.config.watchdog_window_cycles then begin
        rerandomize_after_attack t ~app ~reason:"watchdog feed silence";
        true
      end
      else false

let supervise t ~app ~cycles =
  (* Count the budget locally: a recovery resets the application's cycle
     counter, which must not extend the supervision window. *)
  let detected0 = t.attacks in
  let remaining = ref cycles in
  while !remaining > 0 do
    let slice = min 1_000 !remaining in
    let before = Cpu.cycles app in
    ignore (Cpu.run_until_halt app ~max_cycles:slice);
    let ran = Cpu.cycles app - before in
    remaining := !remaining - max 1 (if ran >= 0 then ran else slice);
    ignore (check_and_recover t ~app)
  done;
  t.attacks - detected0
