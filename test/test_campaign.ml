(* The campaign engine: pool scheduling, deterministic seed derivation,
   wall-clock helper, telemetry merge semantics, and the two ported
   evaluation loops (survival census, Monte Carlo grid) — all asserted
   bit-identical across job counts. *)

module Pool = Mavr_campaign.Pool
module Engine = Mavr_campaign.Engine
module Clock = Mavr_campaign.Clock
module Metrics = Mavr_telemetry.Metrics
module Survival = Mavr_analysis.Survival
module Montecarlo = Mavr_sim.Montecarlo
module Rng = Mavr_prng.Splitmix
module Randomize = Mavr_core.Randomize
module Gadget = Mavr_core.Gadget
module Isa = Mavr_avr.Isa
module Opcode = Mavr_avr.Opcode
module Image = Mavr_obj.Image

(* ---- pool ----------------------------------------------------------- *)

let test_pool_covers_all_indices () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let tasks = 1000 in
      let hits = Array.make tasks 0 in
      (* Each slot is written by exactly one task, so no data race. *)
      Pool.run pool ~tasks (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "every index ran exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

let test_pool_more_tasks_than_domains () =
  (* 8 requested jobs on however few cores: far more tasks than domains,
     uneven chunks. *)
  Pool.with_pool ~jobs:8 (fun pool ->
      let tasks = 97 in
      let out = Array.make tasks 0 in
      Pool.run pool ~tasks (fun i -> out.(i) <- (i * i) + 1);
      Array.iteri
        (fun i v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) ((i * i) + 1) v)
        out)

let test_pool_reuse_across_runs () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let a = Array.make 10 0 and b = Array.make 200 0 in
      Pool.run pool ~tasks:10 (fun i -> a.(i) <- i);
      Pool.run pool ~tasks:200 (fun i -> b.(i) <- 2 * i);
      Alcotest.(check int) "first run landed" 9 a.(9);
      Alcotest.(check int) "second run landed" 398 b.(199))

let test_pool_exceptions_surfaced () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let ran = Array.make 50 false in
          let failing = [ 13; 7; 31 ] in
          match
            Pool.run pool ~tasks:50 (fun i ->
                ran.(i) <- true;
                if List.mem i failing then failwith (Printf.sprintf "task %d" i))
          with
          | () -> Alcotest.fail "expected Task_failed"
          | exception Pool.Task_failed { index; exn; _ } ->
              Alcotest.(check int)
                (Printf.sprintf "lowest failing index surfaces (jobs=%d)" jobs)
                7 index;
              (match exn with
              | Failure m -> Alcotest.(check string) "original exception kept" "task 7" m
              | _ -> Alcotest.fail "unexpected exception payload");
              Alcotest.(check bool) "failures do not cancel other tasks" true
                (Array.for_all Fun.id ran)))
    [ 1; 4 ]

let test_pool_zero_tasks_and_caps () =
  Pool.with_pool ~jobs:2 (fun pool -> Pool.run pool ~tasks:0 (fun _ -> Alcotest.fail "ran"));
  Alcotest.check_raises "jobs < 1 refused" (Invalid_argument "Campaign.Pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0 ()));
  Pool.with_pool ~jobs:1000 (fun pool ->
      Alcotest.(check bool) "job count capped" true (Pool.jobs pool <= Pool.max_jobs))

(* ---- engine determinism -------------------------------------------- *)

let test_engine_jobs_invariant () =
  let run jobs =
    Engine.map ~jobs ~seed:99 ~tasks:64 (fun ~index ~rng ->
        (* Consume task-local randomness so scheduling bugs would show. *)
        let a = Rng.int rng 1_000_000 in
        let b = Rng.int rng 1_000_000 in
        (index, a, b))
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool) "jobs=1 and jobs=4 bit-identical" true (r1 = r4)

let test_engine_seed_sensitivity () =
  let run seed = Engine.map ~jobs:2 ~seed ~tasks:16 (fun ~index:_ ~rng -> Rng.next rng) in
  Alcotest.(check bool) "different roots, different streams" true (run 1 <> run 2);
  Alcotest.(check bool) "same root, same stream" true (run 5 = run 5)

let test_task_seeds_disjoint_from_legacy () =
  let seeds = Engine.task_seeds ~seed:0 ~tasks:64 in
  let distinct = List.sort_uniq compare (Array.to_list seeds) in
  Alcotest.(check int) "seeds pairwise distinct" 64 (List.length distinct);
  (* The old census hardcoded seeds 1..K, the same hand-picked range the
     tests/examples use; the derived schedule must stay clear of it. *)
  Alcotest.(check bool) "no seed in the hand-picked 0..1000 range" true
    (Array.for_all (fun s -> s > 1000) seeds)

let test_map_reduce_index_order () =
  let v =
    Engine.map_reduce ~jobs:4 ~seed:3 ~tasks:26
      ~map:(fun ~index ~rng:_ -> String.make 1 (Char.chr (Char.code 'a' + index)))
      ~reduce:( ^ ) ""
  in
  Alcotest.(check string) "reduce folds in index order" "abcdefghijklmnopqrstuvwxyz" v

(* ---- clock ---------------------------------------------------------- *)

let test_clock_monotonic () =
  let a = Clock.wall () in
  let b = Clock.wall () in
  Alcotest.(check bool) "wall never steps back" true (b >= a);
  let (), span = Clock.time (fun () -> Sys.opaque_identity (ignore (Array.init 1000 Fun.id))) in
  Alcotest.(check bool) "span nonnegative" true (span.Clock.wall_s >= 0.0 && span.Clock.cpu_s >= 0.0);
  Alcotest.(check bool) "zero-length span guarded" true
    (Float.is_finite (Clock.rate 1e9 { Clock.wall_s = 0.0; cpu_s = 0.0 }))

(* ---- Metrics.merge -------------------------------------------------- *)

(* A registry with pseudo-random contents drawn from [rng]: a few fixed
   names per kind so merges overlap, values random. *)
let random_registry rng =
  let r = Metrics.create () in
  for i = 0 to 2 do
    let c = Metrics.counter r (Printf.sprintf "c%d" i) in
    Metrics.add c (Rng.int rng 1000);
    let g = Metrics.gauge r (Printf.sprintf "g%d" i) in
    Metrics.set g (Rng.int rng 1000);
    let h = Metrics.histogram r (Printf.sprintf "h%d" i) in
    for _ = 1 to Rng.int rng 5 do
      Metrics.observe h (Rng.int rng 1000)
    done
  done;
  r

let merged rs =
  let acc = Metrics.create () in
  List.iter (fun r -> Metrics.merge ~into:acc r) rs;
  Metrics.snapshot acc

let test_merge_commutative_associative () =
  let rng = Rng.create ~seed:0xFEED in
  for _ = 1 to 50 do
    let a = random_registry rng and b = random_registry rng and c = random_registry rng in
    Alcotest.(check bool) "A+B = B+A" true (merged [ a; b ] = merged [ b; a ]);
    (* (A+B)+C vs A+(B+C): materialize B+C into a registry first. *)
    let bc = Metrics.create () in
    Metrics.merge ~into:bc b;
    Metrics.merge ~into:bc c;
    Alcotest.(check bool) "(A+B)+C = A+(B+C)" true (merged [ a; b; c ] = merged [ a; bc ])
  done

let test_merge_semantics () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add (Metrics.counter a "n") 3;
  Metrics.add (Metrics.counter b "n") 4;
  Metrics.set (Metrics.gauge a "w") 10;
  Metrics.set (Metrics.gauge b "w") 7;
  Metrics.observe (Metrics.histogram a "h") 5;
  Metrics.observe (Metrics.histogram b "h") 9;
  let acc = Metrics.create () in
  Metrics.merge ~into:acc a;
  Metrics.merge ~into:acc b;
  let find name = List.assoc name (Metrics.snapshot acc) in
  Alcotest.(check bool) "counters add" true (find "n" = Metrics.Counter_value 7);
  Alcotest.(check bool) "gauges max" true (find "w" = Metrics.Gauge_value 10);
  (match find "h" with
  | Metrics.Histogram_value s ->
      Alcotest.(check int) "histogram count" 2 s.count;
      Alcotest.(check int) "histogram sum" 14 s.sum;
      Alcotest.(check int) "histogram min" 5 s.min;
      Alcotest.(check int) "histogram max" 9 s.max
  | _ -> Alcotest.fail "h not a histogram")

let test_merge_sampled_materialized () =
  let live = ref 42 in
  let src = Metrics.create () in
  Metrics.sampled src "s" (fun () -> !live);
  let acc = Metrics.create () in
  Metrics.merge ~into:acc src;
  live := 0;
  (* The merged value was read at merge time; later sampler movement in
     the source must not affect the destination. *)
  Alcotest.(check bool) "sampled materialized as gauge" true
    (List.assoc "s" (Metrics.snapshot acc) = Metrics.Gauge_value 42);
  let src2 = Metrics.create () in
  Metrics.sampled src2 "s" (fun () -> 50);
  Metrics.merge ~into:acc src2;
  Alcotest.(check bool) "materialized gauges combine by max" true
    (List.assoc "s" (Metrics.snapshot acc) = Metrics.Gauge_value 50)

let test_merge_mismatch_refused () =
  let a = Metrics.create () and b = Metrics.create () in
  ignore (Metrics.counter a "x");
  ignore (Metrics.gauge b "x");
  (match Metrics.merge ~into:a b with
  | () -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  let dst = Metrics.create () in
  Metrics.sampled dst "s" (fun () -> 1);
  let src = Metrics.create () in
  Metrics.set (Metrics.gauge src "s") 5;
  match Metrics.merge ~into:dst src with
  | () -> Alcotest.fail "merge into sampled accepted"
  | exception Invalid_argument _ -> ()

(* ---- survival census on the engine ---------------------------------- *)

let mavr_image () = (Helpers.build_mavr ()).image

let test_census_jobs_invariant () =
  let img = mavr_image () in
  let c1 = Survival.census ~seed:(Root 7) ~jobs:1 ~layouts:6 img in
  let c4 = Survival.census ~seed:(Root 7) ~jobs:4 ~layouts:6 img in
  Alcotest.(check bool) "census bit-identical across job counts" true (c1 = c4)

let test_census_legacy_seeds () =
  let img = mavr_image () in
  let c = Survival.census ~seed:Legacy ~jobs:2 ~layouts:4 img in
  Alcotest.(check bool) "legacy schedule is i+1" true (c.layout_seeds = [| 1; 2; 3; 4 |]);
  (* The legacy path must reproduce the exact pre-campaign numbers: the
     sequential reference computation, layout i randomized with seed i+1. *)
  let base = Gadget.scan img in
  let expected =
    Array.init 4 (fun i ->
        let candidate = Randomize.randomize ~seed:(i + 1) img in
        List.fold_left
          (fun n g -> if Survival.gadget_survives ~candidate g then n + 1 else n)
          0 base)
  in
  Alcotest.(check bool) "legacy survivors match sequential reference" true
    (c.survivors_per_layout = expected)

let test_census_roots_sample_disjoint_layouts () =
  let img = mavr_image () in
  let a = Survival.census ~seed:(Root 0) ~layouts:3 img in
  let b = Survival.census ~seed:(Root 1) ~layouts:3 img in
  Alcotest.(check bool) "different roots draw different layout seeds" true
    (a.layout_seeds <> b.layout_seeds);
  Alcotest.(check bool) "derived seeds avoid the legacy 1..K range" true
    (Array.for_all (fun s -> s > 1000) a.layout_seeds)

(* ---- chain_at at the image edge ------------------------------------- *)

let test_chain_at_image_edge () =
  let img = mavr_image () in
  (* An image whose very last word is the first word of a 32-bit call:
     the decoder's truncation contract turns it into [Data], and the
     chain walk must stop at the edge instead of reading past it. *)
  let call_bytes = Opcode.encode_bytes (Isa.Call 0x100) in
  let truncated = String.sub call_bytes 0 2 in
  let code = String.concat "" [ Opcode.encode_bytes Isa.Nop; truncated ] in
  let edge = { img with Image.code } in
  let at = String.length code - 2 in
  (match Survival.chain_at edge at with
  | [ Isa.Data _ ] -> ()
  | chain ->
      Alcotest.failf "expected a single truncated Data, got %d instructions"
        (List.length chain));
  Alcotest.(check bool) "walk from the nop terminates at the edge" true
    (List.length (Survival.chain_at edge 0) = 2);
  Alcotest.(check bool) "offset past the end yields the empty chain" true
    (Survival.chain_at edge (String.length code) = [])

(* ---- Monte Carlo grid ----------------------------------------------- *)

let grid = lazy (Montecarlo.run ~jobs:1 ~ms:600 ~seed:11 ~trials:1 (Helpers.build_mavr ()))

let test_grid_jobs_invariant () =
  let g1 = Lazy.force grid in
  let g2 = Montecarlo.run ~jobs:4 ~ms:600 ~seed:11 ~trials:1 (Helpers.build_mavr ()) in
  Alcotest.(check bool) "cells bit-identical across job counts" true
    (g1.levels = g2.levels);
  Alcotest.(check bool) "merged metrics snapshots identical" true
    (Metrics.snapshot g1.metrics = Metrics.snapshot g2.metrics);
  Alcotest.(check string) "deterministic JSON identical"
    (Mavr_telemetry.Json.to_string (Montecarlo.to_json g1))
    (Mavr_telemetry.Json.to_string (Montecarlo.to_json g2))

let test_grid_effectiveness_semantics () =
  let g = Lazy.force grid in
  let cell d a =
    Array.to_list (Montecarlo.cells g)
    |> List.find (fun (c : Montecarlo.cell) -> c.defense = d && c.attack = a)
  in
  (* The paper's headline row: the stealthy V2 takes over the unprotected
     board and never the MAVR-defended one. *)
  let v2_open = cell Montecarlo.Undefended Montecarlo.V2 in
  Alcotest.(check int) "V2 owns the undefended board" v2_open.trials v2_open.takeovers;
  Alcotest.(check int) "no takeover under MAVR (any attack)" 0
    (Montecarlo.takeovers g Montecarlo.Mavr_defense);
  Alcotest.(check int) "no takeover under software-only diversification" 0
    (Montecarlo.takeovers g Montecarlo.Software_only)

let () =
  Alcotest.run "campaign"
    [
      ( "pool",
        [
          Alcotest.test_case "covers all indices" `Quick test_pool_covers_all_indices;
          Alcotest.test_case "more tasks than domains" `Quick test_pool_more_tasks_than_domains;
          Alcotest.test_case "reuse across runs" `Quick test_pool_reuse_across_runs;
          Alcotest.test_case "exceptions surfaced, lowest index" `Quick
            test_pool_exceptions_surfaced;
          Alcotest.test_case "zero tasks, job caps" `Quick test_pool_zero_tasks_and_caps;
        ] );
      ( "engine",
        [
          Alcotest.test_case "jobs-invariant map" `Quick test_engine_jobs_invariant;
          Alcotest.test_case "seed sensitivity" `Quick test_engine_seed_sensitivity;
          Alcotest.test_case "task seeds disjoint from legacy" `Quick
            test_task_seeds_disjoint_from_legacy;
          Alcotest.test_case "map_reduce index order" `Quick test_map_reduce_index_order;
        ] );
      ("clock", [ Alcotest.test_case "monotonic wall clock" `Quick test_clock_monotonic ]);
      ( "merge",
        [
          Alcotest.test_case "commutative + associative" `Quick
            test_merge_commutative_associative;
          Alcotest.test_case "per-kind semantics" `Quick test_merge_semantics;
          Alcotest.test_case "sampled materialized once" `Quick test_merge_sampled_materialized;
          Alcotest.test_case "kind mismatch refused" `Quick test_merge_mismatch_refused;
        ] );
      ( "census",
        [
          Alcotest.test_case "jobs-invariant" `Quick test_census_jobs_invariant;
          Alcotest.test_case "legacy seed schedule" `Quick test_census_legacy_seeds;
          Alcotest.test_case "root seeds sample fresh layouts" `Quick
            test_census_roots_sample_disjoint_layouts;
          Alcotest.test_case "chain_at stops at image edge" `Quick test_chain_at_image_edge;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "jobs-invariant grid" `Slow test_grid_jobs_invariant;
          Alcotest.test_case "effectiveness semantics" `Slow test_grid_effectiveness_semantics;
        ] );
    ]
