(* Bench smoke checker, wired into `dune runtest`: the --quick --json
   document must parse with the in-tree codec and carry every headline
   key downstream tooling reads (BENCH_PR<n>.json consumers, EXPERIMENTS
   bookkeeping).  Exits nonzero on any miss. *)

module Json = Mavr_telemetry.Json

let required =
  [
    [ "schema" ];
    [ "quick" ];
    [ "table1"; "avg_functions" ];
    [ "table2"; "avg_startup_ms" ];
    [ "effectiveness"; "seeds" ];
    [ "effectiveness"; "succeeded" ];
    [ "decode_cache"; "cached_insn_per_s" ];
    [ "decode_cache"; "speedup" ];
    [ "decode_cache"; "arch_state_identical" ];
    [ "decode_cache"; "wall_s" ];
    [ "decode_cache"; "cpu_s" ];
    [ "superblock"; "legacy_insn_per_s" ];
    [ "superblock"; "off_insn_per_s" ];
    [ "superblock"; "on_insn_per_s" ];
    [ "superblock"; "precompiled_insn_per_s" ];
    [ "superblock"; "blocks_precompiled" ];
    [ "superblock"; "speedup_vs_step" ];
    [ "superblock"; "speedup_vs_cached" ];
    [ "superblock"; "arch_state_identical" ];
    [ "superblock"; "wall_s" ];
    [ "superblock"; "cpu_s" ];
    [ "telemetry_overhead"; "disabled_insn_per_s" ];
    [ "telemetry_overhead"; "enabled_insn_per_s" ];
    [ "telemetry_overhead"; "enabled_overhead_pct" ];
    [ "telemetry_overhead"; "wall_s" ];
    [ "telemetry_overhead"; "cpu_s" ];
    [ "campaign"; "host_domains" ];
    [ "campaign"; "census_scaling" ];
    [ "campaign"; "grid_scaling" ];
    [ "campaign"; "randomize_scaling" ];
    [ "static_analysis"; "arduplane"; "coverage_pct" ];
    [ "static_analysis"; "arduplane"; "lint_findings" ];
    [ "static_analysis"; "arduplane"; "lint_findings_randomized" ];
    [ "static_analysis"; "census_base_gadgets" ];
    [ "static_analysis"; "census_feasible_layouts" ];
    [ "fault_robustness"; "profile" ];
    [ "fault_robustness"; "levels" ];
    [ "fault_robustness"; "mavr_takeovers" ];
    [ "fault_robustness"; "identical_j1_j2" ];
    [ "fault_robustness"; "wall_s" ];
    [ "fault_robustness"; "cpu_s" ];
    [ "tracing"; "off_wall_s" ];
    [ "tracing"; "on_wall_s" ];
    [ "tracing"; "overhead_pct" ];
    [ "tracing"; "identical" ];
    [ "tracing"; "trace_events" ];
    [ "tracing"; "progress_lines" ];
    [ "dataflow"; "arduplane"; "static_bound" ];
    [ "dataflow"; "arduplane"; "dynamic_high_water" ];
    [ "dataflow"; "arduplane"; "bound_holds" ];
    [ "dataflow"; "arduplane"; "taint_findings_mavr" ];
    [ "dataflow"; "arduplane"; "taint_findings_patched" ];
    [ "dataflow"; "arduplane"; "validator_ok" ];
    [ "dataflow"; "arduplane"; "stackdepth_ms" ];
    [ "dataflow"; "arduplane"; "taint_ms" ];
    [ "dataflow"; "arduplane"; "validate_ms" ];
    [ "resumable"; "tasks" ];
    [ "resumable"; "full_wall_s" ];
    [ "resumable"; "resume_wall_s" ];
    [ "resumable"; "resume_frontier" ];
    [ "resumable"; "resume_identical" ];
    [ "resumable"; "early_stop" ];
    [ "dispatch"; "tasks" ];
    [ "dispatch"; "shards" ];
    [ "dispatch"; "workers" ];
    [ "dispatch"; "single_wall_s" ];
    [ "dispatch"; "dispatch_wall_s" ];
    [ "dispatch"; "entries" ];
    [ "dispatch"; "worker_failures" ];
    [ "dispatch"; "identical" ];
  ]

let load path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.of_string s with
  | Error e ->
      Printf.eprintf "bench smoke: %s does not parse: %s\n" path e;
      exit 1
  | Ok doc -> doc

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: check.exe BENCH.json [BASELINE_PR5.json]";
    exit 2
  end;
  let path = Sys.argv.(1) in
  (* The optional second document is a *previous PR's* committed bench
     artifact: with it present, the absolute insn-rate gates below compare
     this run against that run (same machine, stored numbers). *)
  let baseline = if Array.length Sys.argv > 2 then Some (load Sys.argv.(2)) else None in
  let doc = load path in
      let missing = List.filter (fun p -> Json.path p doc = None) required in
      List.iter
        (fun p -> Printf.eprintf "bench smoke: missing key %s\n" (String.concat "." p))
        missing;
      if missing <> [] then exit 1;
      (* The campaign scaling rows carry the determinism contract into the
         committed artifact: every row must time both clocks and must have
         reproduced the jobs=1 document byte-for-byte. *)
      let scaling_ok =
        List.for_all
          (fun section ->
            match Json.path [ "campaign"; section ] doc with
            | Some (Json.List rows) when rows <> [] ->
                List.for_all
                  (fun row ->
                    List.for_all
                      (fun k -> Json.member k row <> None)
                      [ "jobs"; "wall_s"; "cpu_s"; "speedup"; "items_per_s" ]
                    && Json.member "identical" row = Some (Json.Bool true)
                    ||
                    (Printf.eprintf
                       "bench smoke: bad campaign.%s row: %s\n" section (Json.to_string row);
                     false))
                  rows
            | _ ->
                Printf.eprintf "bench smoke: campaign.%s is not a non-empty list\n" section;
                false)
          [ "census_scaling"; "grid_scaling"; "randomize_scaling" ]
      in
      if not scaling_ok then exit 1;
      (* The fault sweep's own contract: the faulted campaign document is
         jobs-invariant, MAVR concedes nothing at any intensity, and every
         level row carries its detection/false-alarm numbers. *)
      let fault_ok =
        Json.path [ "fault_robustness"; "identical_j1_j2" ] doc = Some (Json.Bool true)
        || (prerr_endline "bench smoke: fault_robustness not jobs-invariant"; false)
      in
      let fault_ok =
        fault_ok
        && (Json.path [ "fault_robustness"; "mavr_takeovers" ] doc = Some (Json.Int 0)
           || (prerr_endline "bench smoke: fault_robustness reports MAVR takeovers"; false))
      in
      let fault_ok =
        fault_ok
        &&
        match Json.path [ "fault_robustness"; "levels" ] doc with
        | Some (Json.List rows) when rows <> [] ->
            List.for_all
              (fun row ->
                List.for_all
                  (fun k -> Json.member k row <> None)
                  [
                    "level"; "mavr_takeovers"; "mavr_detections"; "mavr_false_alarm_rate";
                    "undefended_false_alarm_rate";
                  ]
                ||
                (Printf.eprintf "bench smoke: bad fault_robustness level row: %s\n"
                   (Json.to_string row);
                 false))
              rows
        | _ ->
            prerr_endline "bench smoke: fault_robustness.levels is not a non-empty list";
            false
      in
      if not fault_ok then exit 1;
      (* PR-6 semantic gates.  Equivalence must hold in every run; the
         throughput gates are only meaningful on a full-budget run —
         --quick budgets are too small for stable rates (and pay the lazy
         trace-compile cost without amortizing it), so they gate the
         committed BENCH_PR6.json, not the CI smoke document.

         Two speedup denominators, deliberately:
         - [speedup_vs_step] is the headline ratio against the PR-5
           decode_cache baseline (the per-step/full-decode dispatch),
           re-measured in the same run.  The gate is 2x, not 3x, because
           PR-6's shared-path work (branchless flag materialization,
           inlined register/SREG accessors) sped the per-step engine up
           too — the in-run baseline is ~25% faster than the one stored
           in BENCH_PR5.json.  The 3x claim against the *stored* PR-5
           number is gated separately below when that artifact is given.
         - [speedup_vs_cached] only asserts the fused engine is not a
           regression over cached stepping on this diffuse firmware
           (hottest trace ~4% of retired instructions; see EXPERIMENTS). *)
      let num ?(doc = doc) p =
        match Json.path p doc with
        | Some (Json.Float f) -> Some f
        | Some (Json.Int i) -> Some (float_of_int i)
        | _ -> None
      in
      let gate_ratio what p threshold =
        match num p with
        | Some s when s >= threshold -> true
        | Some s ->
            Printf.eprintf "bench smoke: %s %.2fx below the %.1fx gate\n" what s threshold;
            false
        | None ->
            Printf.eprintf "bench smoke: %s missing\n" what;
            false
      in
      let sb_ok =
        Json.path [ "superblock"; "arch_state_identical" ] doc = Some (Json.Bool true)
        || (prerr_endline "bench smoke: superblock engine not architecturally identical"; false)
      in
      let quick_run = Json.path [ "quick" ] doc = Some (Json.Bool true) in
      let sb_ok =
        sb_ok
        && (quick_run
           || gate_ratio "superblock speedup_vs_step" [ "superblock"; "speedup_vs_step" ] 2.0)
      in
      let sb_ok =
        sb_ok
        && (quick_run
           || gate_ratio "superblock speedup_vs_cached" [ "superblock"; "speedup_vs_cached" ] 1.0)
      in
      (* The ISSUE's absolute gate: superblock insn rate >= 3x the PR-5
         decode_cache baseline as committed in BENCH_PR5.json (same
         machine, stored run). *)
      let sb_ok =
        sb_ok
        &&
        match baseline with
        | None -> true
        | Some base -> (
            match (num [ "superblock"; "on_insn_per_s" ],
                   num ~doc:base [ "decode_cache"; "legacy_insn_per_s" ]) with
            | Some _, Some _ when quick_run -> true
            | Some on, Some legacy when on >= 3.0 *. legacy -> true
            | Some on, Some legacy ->
                Printf.eprintf
                  "bench smoke: superblock rate %.0f below 3x the stored PR-5 baseline %.0f\n"
                  on legacy;
                false
            | _ ->
                prerr_endline "bench smoke: baseline comparison keys missing";
                false)
      in
      let sb_ok =
        sb_ok
        && (quick_run
           ||
           match num [ "telemetry_overhead"; "enabled_overhead_pct" ] with
           | Some p when p <= 15.0 -> true
           | Some p ->
               Printf.eprintf "bench smoke: telemetry overhead %.1f%% above the 15%% gate\n" p;
               false
           | None -> prerr_endline "bench smoke: telemetry overhead missing"; false)
      in
      if not sb_ok then exit 1;
      (* PR-7 observability gates.  Arming the tracer and progress stream
         can never change a campaign result; the produced trace must be
         non-empty; and on a full-budget run the instrumentation tax is
         bounded at 10% wall clock (quick budgets are too short for a
         stable ratio, so the overhead gate applies to the committed
         artifact only). *)
      let tr_ok =
        Json.path [ "tracing"; "identical" ] doc = Some (Json.Bool true)
        || (prerr_endline "bench smoke: tracing perturbed the campaign document"; false)
      in
      let tr_ok =
        tr_ok
        && (match num [ "tracing"; "trace_events" ] with
           | Some n when n > 0.0 -> true
           | _ -> prerr_endline "bench smoke: traced run produced no span events"; false)
      in
      let tr_ok =
        tr_ok
        && (quick_run
           ||
           match num [ "tracing"; "overhead_pct" ] with
           | Some p when p <= 10.0 -> true
           | Some p ->
               Printf.eprintf "bench smoke: tracing overhead %.1f%% above the 10%% gate\n" p;
               false
           | None -> prerr_endline "bench smoke: tracing overhead missing"; false)
      in
      if not tr_ok then exit 1;
      (* PR-8 data-flow gates — semantic claims, so they apply to quick
         runs too: on every profile the static stack bound dominates the
         measured SP watermark, the uplink taint analysis rediscovers the
         §IV unchecked copy on the vulnerable toolchain and stays silent
         on the bounds-checked one, and the translation-validator accepts
         the fresh randomized layout. *)
      let df_ok =
        match Json.path [ "dataflow" ] doc with
        | Some (Json.Obj rows) when rows <> [] ->
            List.for_all
              (fun (profile, row) ->
                let bool_true k = Json.member k row = Some (Json.Bool true) in
                let int_of k =
                  match Json.member k row with Some (Json.Int i) -> Some i | _ -> None
                in
                let ok = ref true in
                let complain fmt =
                  Printf.ksprintf
                    (fun s ->
                      Printf.eprintf "bench smoke: dataflow.%s: %s\n" profile s;
                      ok := false)
                    fmt
                in
                if not (bool_true "bound_holds") then
                  complain "static stack bound does not dominate the dynamic watermark";
                if not (bool_true "validator_ok") then
                  complain "translation-validator rejected the randomized layout";
                (match int_of "taint_findings_mavr" with
                | Some n when n >= 1 -> ()
                | _ -> complain "taint lost the unchecked PARAM_SET copy on the mavr build");
                (match int_of "taint_findings_patched" with
                | Some 0 -> ()
                | _ -> complain "taint is not silent on the bounds-checked build");
                !ok)
              rows
        | _ ->
            prerr_endline "bench smoke: dataflow is not a non-empty object";
            false
      in
      if not df_ok then exit 1;
      (* PR-9 resumable-campaign gates — semantic claims, so they apply
         to quick runs too: a half-frontier resume reproduces the full
         document byte-for-byte, every early-stop row is jobs-invariant
         with explicit skip accounting, and the loosest target actually
         saves trials (the policy is not vacuous at bench budgets). *)
      let rs_ok =
        Json.path [ "resumable"; "resume_identical" ] doc = Some (Json.Bool true)
        || (prerr_endline "bench smoke: resumed campaign not byte-identical"; false)
      in
      let skipped_of row =
        match Json.member "trials_skipped" row with Some (Json.Int n) -> Some n | _ -> None
      in
      let rs_ok =
        rs_ok
        &&
        match Json.path [ "resumable"; "early_stop" ] doc with
        | Some (Json.List rows) when rows <> [] ->
            List.for_all
              (fun row ->
                Json.member "identical_j1_j4" row = Some (Json.Bool true)
                && (match skipped_of row with Some n -> n >= 0 | None -> false)
                && Json.member "saved_pct" row <> None
                ||
                (Printf.eprintf "bench smoke: bad resumable.early_stop row: %s\n"
                   (Json.to_string row);
                 false))
              rows
            && (List.exists (fun row -> match skipped_of row with Some n -> n > 0 | None -> false)
                  rows
               || (prerr_endline "bench smoke: early stopping saved zero trials at every target";
                   false))
        | _ ->
            prerr_endline "bench smoke: resumable.early_stop is not a non-empty list";
            false
      in
      if not rs_ok then exit 1;
      (* PR-10 dispatch gates — the sharded-and-merged document is
         byte-identical to the single-host one, the merged frontier
         covers every task, and the healthy-pool run lost no worker. *)
      let dp_ok =
        (Json.path [ "dispatch"; "identical" ] doc = Some (Json.Bool true)
        || (prerr_endline "bench smoke: dispatched campaign not byte-identical"; false))
        && (match
              (Json.path [ "dispatch"; "entries" ] doc, Json.path [ "dispatch"; "tasks" ] doc)
            with
           | Some (Json.Int e), Some (Json.Int t) when e = t && t > 0 -> true
           | _ ->
               prerr_endline "bench smoke: dispatch merged frontier incomplete";
               false)
        &&
        match Json.path [ "dispatch"; "worker_failures" ] doc with
        | Some (Json.Int 0) -> true
        | _ ->
            prerr_endline "bench smoke: dispatch reported worker failures on a healthy pool";
            false
      in
      if not dp_ok then exit 1;
      (match Option.bind (Json.path [ "schema" ] doc) Json.to_str with
      | Some "mavr-bench" -> ()
      | Some other ->
          Printf.eprintf "bench smoke: unexpected schema %S\n" other;
          exit 1
      | None ->
          prerr_endline "bench smoke: schema is not a string";
          exit 1);
      Printf.printf "bench smoke: %s OK (%d keys present)\n" path (List.length required)
