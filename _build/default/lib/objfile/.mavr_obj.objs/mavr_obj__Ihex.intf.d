lib/objfile/ihex.mli:
