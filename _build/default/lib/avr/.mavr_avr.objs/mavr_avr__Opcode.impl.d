lib/avr/opcode.ml: Buffer Char Isa List Printf
