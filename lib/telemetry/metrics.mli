(** Named metrics registry: counters, gauges, histograms.

    The observability substrate for the whole stack — CPU instruction
    mix, MAVLink link quality, master flash-session timing, ground
    station alarms all land here under dotted names
    ([avr.insn.call], [mavlink.crc_errors], ...).

    Two kinds of cells exist: {e owned} metrics ({!counter}, {!gauge},
    {!histogram}) that instrumented code pushes into, and {e sampled}
    gauges ({!sampled}) that pull a live value from their owner at
    snapshot time — the latter cost the instrumented hot path nothing,
    which is how the MAVLink parser's existing counters are exported
    without touching its byte loop.

    Registration is idempotent per (name, kind): re-registering a name
    returns the same cell; re-registering under a different kind raises
    [Invalid_argument]. *)

type registry

val create : unit -> registry

(** {2 Owned metrics} *)

type counter

val counter : registry -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

type gauge

val gauge : registry -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

(** [set_max g v] ([set_min]) ratchets the gauge upward (downward). *)
val set_max : gauge -> int -> unit

val set_min : gauge -> int -> unit

type histogram

val histogram : registry -> string -> histogram

(** [observe h v] records one sample. *)
val observe : histogram -> int -> unit

(** {2 Sampled gauges} *)

(** [sampled t name f] registers a pull-style gauge: [f ()] is read at
    snapshot time.  Snapshots report it as a gauge; {!reset} leaves it
    alone (it reflects state owned elsewhere). *)
val sampled : registry -> string -> (unit -> int) -> unit

(** [sampled_counter t name f] is {!sampled} with counter semantics:
    snapshots report it as a counter, and {!merge} materializes it into
    the destination as an owned counter that {e adds} across sources.
    Use it for monotone totals owned by live rigs (fault-injection byte
    counts, retry tallies) that must sum — not max — when per-trial
    registries join at a campaign barrier. *)
val sampled_counter : registry -> string -> (unit -> int) -> unit

(** {2 Snapshot and export} *)

type histogram_stats = { count : int; sum : int; min : int; max : int; mean : float }

type value_snapshot =
  | Counter_value of int
  | Gauge_value of int
  | Histogram_value of histogram_stats

(** [snapshot t] is every metric's current value, sorted by name. *)
val snapshot : registry -> (string * value_snapshot) list

(** [reset t] zeroes owned metrics (sampled gauges are untouched). *)
val reset : registry -> unit

(** [merge ~into src] folds every metric of [src] into [into] — the join
    step of a parallel campaign, where each worker owned a private
    registry.  Semantics, chosen so merging is commutative and
    associative (join order never matters):

    - counters {e add};
    - gauges combine by {e max} (every gauge in this stack is a
      watermark; a metric needing a different fold should be a
      histogram);
    - histograms combine pointwise (count/sum add, min/max widen);
    - a {e sampled} gauge in [src] is read once, at merge time, and lands
      in [into] as a plain (max-combined) gauge — its sampler belongs to
      the worker's finished rig, so the value is final and [into] must
      own it outright;
    - a {e sampled counter} likewise materializes once, into an owned
      counter, and therefore adds across sources.

    Names absent from [into] are registered as fresh owned cells (never
    aliased with [src]'s).
    @raise Invalid_argument on a kind mismatch, or when [into] holds a
    sampled gauge under a merged name (a pull gauge cannot absorb a
    value). *)
val merge : into:registry -> registry -> unit

val to_json : registry -> Json.t

(** Rebuilds an owned registry from a {!to_json} document — the
    checkpoint-resume path.  Every cell comes back as an owned
    counter/gauge/histogram (sampled cells were already materialized by
    the snapshot behind {!to_json}), so
    [to_json (of_json (to_json t))] round-trips byte-identically and
    the result merges like the original.  An empty histogram restores
    the empty sentinel, keeping later pointwise merges exact. *)
val of_json : Json.t -> (registry, string) result

(** One compact JSON object per line
    ([{"name":...,"seq":...,"cycle":...,"type":...,...}]).  [seq] is
    monotonic per registry across calls and never resets, so a stream
    consumer can detect dropped or reordered lines; [cycle] (default 0)
    stamps every line of this emission with the emulated-CPU cycle the
    snapshot was taken at. *)
val to_jsonl : ?cycle:int -> registry -> string

(** Parses {!to_jsonl} output back; the round-trip equals {!snapshot}. *)
val of_jsonl : string -> ((string * value_snapshot) list, string) result

val pp_value : Format.formatter -> value_snapshot -> unit

(** Human-readable aligned table of the snapshot. *)
val pp_summary : Format.formatter -> registry -> unit
