(** The APM 2.5 sensor suite (§II-A): 3-axis gyroscope, accelerometer and
    barometer models.

    Each sensor samples the physical truth from {!Dynamics} and applies a
    seeded noise process (white noise plus a slowly-drifting bias, the
    standard MEMS error model).  All randomness flows from the seed, so
    closed-loop scenarios stay reproducible. *)

type reading = {
  gyro_x_raw : int;  (** roll rate, 1000 LSB per rad/s, two's complement 16-bit *)
  accel_x_raw : int;  (** forward acceleration, 1000 LSB per g *)
  baro_alt_cm : int;  (** barometric altitude in centimetres *)
}

type t

(** [create ~seed ()] — optional noise magnitudes in raw LSB
    ([gyro_noise], [accel_noise]) and centimetres ([baro_noise]). *)
val create : ?gyro_noise:float -> ?accel_noise:float -> ?baro_noise:float -> seed:int -> unit -> t

(** [sample t state] draws one noisy reading of [state]. *)
val sample : t -> Dynamics.state -> reading

(** [write_to_cpu reading cpu] latches the reading into the memory-mapped
    sensor registers the firmware reads. *)
val write_to_cpu : reading -> Mavr_avr.Cpu.t -> unit
