(** Adaptive early stopping for Monte-Carlo cells.

    A campaign cell (one defense × attack × fault-level combination)
    estimates a binomial rate — detection for attacked cells, false
    alarm for controls.  This policy stops a cell once the Wilson score
    interval around its running estimate is narrower than a target
    halfwidth, instead of burning the full fixed trial budget.

    Determinism: the policy itself is pure arithmetic.  The campaign
    driver applies it in deterministic {e rounds} — every open cell
    runs the same batch of trials (fixed per-trial seeds), then stop
    decisions are taken sequentially from the completed per-cell
    prefixes.  Decisions are therefore a function of trial results
    only, never of scheduling, so early-stopped output is
    jobs-invariant and resume replays the identical trajectory. *)

type t

(** [create ?z ?min_trials ?batch ~target ()] — stop a cell when its
    Wilson interval halfwidth at confidence [z] (default 1.96 ≈ 95%)
    drops to [target] or below, but never before [min_trials] (default
    8) trials.  Open cells grow by [batch] (default 4) trials per
    round.
    @raise Invalid_argument unless [0 < target < 1], [z > 0],
    [min_trials >= 1] and [batch >= 1]. *)
val create : ?z:float -> ?min_trials:int -> ?batch:int -> target:float -> unit -> t

val target : t -> float
val z : t -> float
val min_trials : t -> int
val batch : t -> int

(** [wilson ~z ~n ~k] — Wilson score interval [(lo, hi)] for [k]
    successes in [n] trials; [(0, 1)] when [n = 0]. *)
val wilson : z:float -> n:int -> k:int -> float * float

(** Half the Wilson interval width. *)
val halfwidth : z:float -> n:int -> k:int -> float

(** [should_stop t ~n ~k] — [n >= min_trials] and the halfwidth met the
    target. *)
val should_stop : t -> n:int -> k:int -> bool

(** Policy parameters as JSON fields (for the campaign document's
    ["early_stop"] section). *)
val to_json_fields : t -> (string * Mavr_telemetry.Json.t) list
