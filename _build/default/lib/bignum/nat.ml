(* Little-endian limbs in base 10^9; the empty array is zero.  The
   representation is canonical: no trailing zero limb. *)

let base = 1_000_000_000
let base_digits = 9

type t = int array

let zero = [||]
let one = [| 1 |]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  let rec limbs n acc = if n = 0 then acc else limbs (n / base) (n mod base :: acc) in
  normalize (Array.of_list (List.rev (limbs n [])))

let to_int a =
  let v =
    Array.fold_right
      (fun limb acc ->
        if acc > (max_int - limb) / base then failwith "Nat.to_int: overflow"
        else (acc * base) + limb)
      a 0
  in
  v

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s mod base;
    carry := s / base
  done;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul_int a k =
  if k < 0 then invalid_arg "Nat.mul_int: negative";
  if k = 0 || Array.length a = 0 then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 3) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (a.(i) * k) + !carry in
      r.(i) <- p mod base;
      carry := p / base
    done;
    let i = ref la in
    while !carry > 0 do
      r.(!i) <- !carry mod base;
      carry := !carry / base;
      incr i
    done;
    normalize r
  end

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    (* Schoolbook multiplication; products of two base-10^9 limbs exceed
       62 bits, so split each b-limb into two half-limbs of <= 31711. *)
    let half = 31623 (* ceil (sqrt base) *) in
    let r = Array.make (la + lb + 1) 0 in
    for j = 0 to lb - 1 do
      let bh = b.(j) / half and bl = b.(j) mod half in
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let p = (a.(i) * bl) + ((a.(i) * bh mod base) * half) + r.(i + j) + !carry in
        let extra = a.(i) * bh / base * half in
        r.(i + j) <- p mod base;
        carry := (p / base) + extra
      done;
      let i = ref la in
      while !carry > 0 do
        let s = r.(!i + j) + !carry in
        r.(!i + j) <- s mod base;
        carry := s / base;
        incr i
      done
    done;
    normalize r
  end

let divmod_int a k =
  if k <= 0 || k > 1 lsl 30 then invalid_arg "Nat.divmod_int: divisor out of range";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem * base) + a.(i) in
    q.(i) <- cur / k;
    rem := cur mod k
  done;
  (normalize q, !rem)

let factorial n =
  if n < 0 then invalid_arg "Nat.factorial: negative";
  let rec go i acc = if i > n then acc else go (i + 1) (mul_int acc i) in
  go 2 one

let log2 a =
  let la = Array.length a in
  if la = 0 then neg_infinity
  else begin
    (* Use the top (up to) three limbs for the mantissa. *)
    let top = ref 0.0 in
    let limbs_used = min 3 la in
    for i = la - 1 downto la - limbs_used do
      top := (!top *. float_of_int base) +. float_of_int a.(i)
    done;
    let skipped = la - limbs_used in
    (log !top /. log 2.0) +. (float_of_int skipped *. float_of_int base_digits *. (log 10.0 /. log 2.0))
  end

let log2_factorial n =
  let rec go i acc = if i > n then acc else go (i + 1) (acc +. (log (float_of_int i) /. log 2.0)) in
  go 2 0.0

let to_string a =
  let la = Array.length a in
  if la = 0 then "0"
  else begin
    let buf = Buffer.create (la * base_digits) in
    Buffer.add_string buf (string_of_int a.(la - 1));
    for i = la - 2 downto 0 do
      Buffer.add_string buf (Printf.sprintf "%09d" a.(i))
    done;
    Buffer.contents buf
  end

let digits a = String.length (to_string a)

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Nat.of_string: empty";
  String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Nat.of_string: not a digit") s;
  let nlimbs = (len + base_digits - 1) / base_digits in
  let r = Array.make nlimbs 0 in
  let pos = ref len in
  for i = 0 to nlimbs - 1 do
    let start = max 0 (!pos - base_digits) in
    r.(i) <- int_of_string (String.sub s start (!pos - start));
    pos := start
  done;
  normalize r

let pp fmt a = Format.pp_print_string fmt (to_string a)
