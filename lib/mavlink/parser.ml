type stats = { frames_ok : int; crc_errors : int; bytes_dropped : int }

type t = {
  crc_extra_of : int -> int;
  buf : Buffer.t;
  mutable frames_ok : int;
  mutable crc_errors : int;
  mutable bytes_dropped : int;
}

let create ?(crc_extra_of = Messages.crc_extra_of) () =
  { crc_extra_of; buf = Buffer.create 64; frames_ok = 0; crc_errors = 0; bytes_dropped = 0 }

let feed t bytes =
  (* Single pass over one string, tracking an offset: a k-frame chunk is
     O(n) total instead of rebuilding the buffer (O(n) copy) per frame,
     and every byte is accounted exactly once — parsed into a frame,
     counted in [bytes_dropped], or left buffered for the next chunk. *)
  let data =
    if Buffer.length t.buf = 0 then bytes
    else begin
      Buffer.add_string t.buf bytes;
      let d = Buffer.contents t.buf in
      Buffer.clear t.buf;
      d
    end
  in
  let n = String.length data in
  let frames = ref [] in
  let pos = ref 0 in
  let waiting = ref false in
  while (not !waiting) && !pos < n do
    if Char.code data.[!pos] <> Frame.magic then begin
      (* Resync: drop bytes up to the next magic. *)
      let next =
        match String.index_from_opt data !pos (Char.chr Frame.magic) with
        | Some i -> i
        | None -> n
      in
      t.bytes_dropped <- t.bytes_dropped + (next - !pos);
      pos := next
    end
    else
      match Frame.decode ~crc_extra_of:t.crc_extra_of ~pos:!pos data with
      | Ok (frame, consumed) ->
          t.frames_ok <- t.frames_ok + 1;
          frames := frame :: !frames;
          pos := !pos + consumed
      | Error Frame.Truncated -> waiting := true
      | Error (Frame.Bad_crc _) ->
          (* Skip the bad frame's magic byte and resync. *)
          t.crc_errors <- t.crc_errors + 1;
          t.bytes_dropped <- t.bytes_dropped + 1;
          incr pos
      | Error Frame.Bad_magic ->
          t.bytes_dropped <- t.bytes_dropped + 1;
          incr pos
  done;
  if !pos < n then Buffer.add_substring t.buf data !pos (n - !pos);
  List.rev !frames

let stats t = { frames_ok = t.frames_ok; crc_errors = t.crc_errors; bytes_dropped = t.bytes_dropped }

let pending t = Buffer.length t.buf

(* Pull-style export: the registry reads the counters at snapshot time,
   so the byte loop above is untouched — the link-quality numbers the
   ground station's anomaly detector keys on become observable without
   any per-byte instrumentation cost. *)
let attach_metrics ?(prefix = "mavlink") t registry =
  let module M = Mavr_telemetry.Metrics in
  let name s = prefix ^ "." ^ s in
  M.sampled registry (name "frames_ok") (fun () -> t.frames_ok);
  M.sampled registry (name "crc_errors") (fun () -> t.crc_errors);
  M.sampled registry (name "bytes_dropped") (fun () -> t.bytes_dropped);
  M.sampled registry (name "bytes_pending") (fun () -> Buffer.length t.buf)
