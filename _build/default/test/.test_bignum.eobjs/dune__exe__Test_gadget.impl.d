test/test_gadget.ml: Alcotest Helpers List Mavr_avr Mavr_core Mavr_firmware Mavr_obj Option
