type t = {
  dev : Device.t;
  flash : Bytes.t;
  data : Bytes.t;
  eeprom : Bytes.t;
  mutable page_writes : int;
  mutable flash_epoch : int;
}

let create dev =
  {
    dev;
    flash = Bytes.make dev.Device.flash_bytes '\xff';
    data = Bytes.make (Device.data_end dev) '\x00';
    eeprom = Bytes.make dev.Device.eeprom_bytes '\xff';
    page_writes = 0;
    flash_epoch = 0;
  }

let device t = t.dev
let flash_epoch t = t.flash_epoch

let load_flash t image =
  if String.length image > Bytes.length t.flash then
    invalid_arg "Memory.load_flash: image larger than flash";
  Bytes.fill t.flash 0 (Bytes.length t.flash) '\xff';
  Bytes.blit_string image 0 t.flash 0 (String.length image);
  t.flash_epoch <- t.flash_epoch + 1

let flash_byte t addr =
  if addr < 0 || addr >= Bytes.length t.flash then 0xFF else Char.code (Bytes.get t.flash addr)

let flash_word t word_addr =
  let b = word_addr * 2 in
  flash_byte t b lor (flash_byte t (b + 1) lsl 8)

let flash_size t = Bytes.length t.flash

let flash_write_page t ~page_addr data =
  let page = t.dev.Device.flash_page_bytes in
  if page_addr mod page <> 0 then invalid_arg "Memory.flash_write_page: unaligned page";
  if String.length data <> page then invalid_arg "Memory.flash_write_page: bad page size";
  if page_addr + page > Bytes.length t.flash then
    invalid_arg "Memory.flash_write_page: beyond flash";
  Bytes.blit_string data 0 t.flash page_addr page;
  t.page_writes <- t.page_writes + 1;
  t.flash_epoch <- t.flash_epoch + 1

let flash_page_writes t = t.page_writes
let flash_contents t = Bytes.to_string t.flash

(* Register-file fast path: addresses 0..31 are always inside the data
   array, so skip the range test.  The [land 31] keeps the access memory
   safe even for a hand-constructed out-of-range register number. *)
let reg_get t r = Char.code (Bytes.unsafe_get t.data (r land 31))
let reg_set t r v = Bytes.unsafe_set t.data (r land 31) (Char.unsafe_chr (v land 0xFF))

let data_get t addr =
  if addr < 0 || addr >= Bytes.length t.data then 0 else Char.code (Bytes.get t.data addr)

let data_set t addr v =
  if addr >= 0 && addr < Bytes.length t.data then Bytes.set t.data addr (Char.unsafe_chr (v land 0xFF))

let in_data_space t addr = addr >= 0 && addr < Bytes.length t.data

let data_slice t ~pos ~len =
  let size = Bytes.length t.data in
  let pos = max 0 (min pos size) in
  let len = max 0 (min len (size - pos)) in
  Bytes.sub_string t.data pos len

let eeprom_get t addr =
  if addr < 0 || addr >= Bytes.length t.eeprom then 0xFF else Char.code (Bytes.get t.eeprom addr)

let eeprom_set t addr v =
  if addr >= 0 && addr < Bytes.length t.eeprom then
    Bytes.set t.eeprom addr (Char.chr (v land 0xFF))
