type stack_snapshot = { label : string; window_start : int; bytes : string; sp_at : int }

let snapshot cpu ~label ~window_start ~window_len =
  {
    label;
    window_start;
    bytes = Cpu.stack_slice cpu ~pos:window_start ~len:window_len;
    sp_at = Cpu.sp cpu;
  }

let pp_snapshot fmt s =
  Format.fprintf fmt "%s (SP=0x%04x)@." s.label s.sp_at;
  let n = String.length s.bytes in
  let row = 8 in
  let rec go i =
    if i < n then begin
      Format.fprintf fmt "0x%06X:" (s.window_start + i);
      for j = i to min (i + row - 1) (n - 1) do
        Format.fprintf fmt " 0x%02X" (Char.code s.bytes.[j])
      done;
      Format.fprintf fmt "@.";
      go (i + row)
    end
  in
  go 0

type event = { byte_addr : int; insn : Isa.t; sp_before : int; cycle : int }

type recorder = { limit : int; q : event Queue.t }

let recorder ~limit = { limit; q = Queue.create () }

(* The recorder rides the CPU's instruction tap: the tap fires before
   each instruction executes (SP/cycles still pre-execution), with the
   decode coming straight from the predecode cache.  Tracing therefore
   composes with the batched [Cpu.run] loops — the former implementation
   decoded a second time from flash and forced single-step drivers. *)
let attach r cpu =
  Cpu.set_insn_tap cpu
    (Some
       (fun pc insn ->
         Queue.push
           { byte_addr = pc * 2; insn; sp_before = Cpu.sp cpu; cycle = Cpu.cycles cpu }
           r.q;
         while Queue.length r.q > r.limit do
           ignore (Queue.pop r.q)
         done))

let detach cpu = Cpu.set_insn_tap cpu None

let step_traced r cpu =
  attach r cpu;
  Cpu.step cpu;
  detach cpu

let events r = List.of_seq (Queue.to_seq r.q)

let pp_event fmt e =
  Format.fprintf fmt "[%8d] %6x:\t%a\t(SP=0x%04x)" e.cycle e.byte_addr Isa.pp e.insn e.sp_before
