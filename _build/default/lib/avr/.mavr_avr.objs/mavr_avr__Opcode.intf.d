lib/avr/opcode.mli: Isa
