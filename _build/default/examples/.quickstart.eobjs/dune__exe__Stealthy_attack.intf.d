examples/stealthy_attack.mli:
