(** Linear-sweep disassembler over flash images.

    This is the view an attacker has of the {e unprotected} binary (threat
    model, §IV-A): a total decode of program memory, used both by the
    gadget finder and for human-readable listings like Figs. 4 and 5. *)

type line = {
  byte_addr : int;  (** address of the instruction, in bytes *)
  insn : Isa.t;
  size_bytes : int;
}

(** [sweep code ~pos ~len] decodes [len] bytes starting at byte offset
    [pos] (both default to the whole string). *)
val sweep : ?pos:int -> ?len:int -> string -> line list

(** [listing code ~pos ~len] pretty-prints a region, one instruction per
    line, in the objdump-like format of the paper's gadget figures. *)
val listing : ?pos:int -> ?len:int -> string -> string

val pp_line : Format.formatter -> line -> unit
