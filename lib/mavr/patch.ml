module Isa = Mavr_avr.Isa
module Image = Mavr_obj.Image
module Decode = Mavr_avr.Decode
module Opcode = Mavr_avr.Opcode

exception Unpatchable of string

let unpatchable fmt = Printf.ksprintf (fun m -> raise (Unpatchable m)) fmt

let in_text (img : Image.t) addr = addr >= img.text_start && addr < img.text_end

(* Remap a byte address through the shuffle, attributing mid-function
   targets to their containing block by binary search (§VI-B3). *)
let remap img shuffle addr =
  if not (in_text img addr) then addr
  else
    match Image.function_containing img addr with
    | Some _ -> Shuffle.map_addr img shuffle addr
    | None -> unpatchable "target 0x%x inside text but in no function" addr

let blit_words out pos words =
  List.iteri
    (fun k w ->
      Bytes.set out (pos + (2 * k)) (Char.chr (w land 0xFF));
      Bytes.set out (pos + (2 * k) + 1) (Char.chr ((w lsr 8) land 0xFF)))
    words

(* Rewrite one executable range.  [old_base] is its address in the source
   image, [new_base] in the output, [len] its size; [block] bounds the
   legal span of relative transfers (for text functions, the block
   itself). *)
let patch_range img shuffle ~code ~out ~old_base ~new_base ~len ~block_lo ~block_hi =
  let pos = ref 0 in
  while !pos + 1 < len do
    let old_addr = old_base + !pos in
    let insn, size = Decode.decode_bytes code old_addr in
    (match insn with
    | Isa.Call a | Isa.Jmp a ->
        let target = a * 2 in
        if in_text img target then begin
          let target' = remap img shuffle target in
          let insn' =
            match insn with
            | Isa.Call _ -> Isa.Call (target' / 2)
            | _ -> Isa.Jmp (target' / 2)
          in
          blit_words out (new_base + !pos) (Opcode.encode insn')
        end
    | Isa.Rcall k | Isa.Rjmp k ->
        let target = old_addr + 2 + (k * 2) in
        if target < block_lo || target >= block_hi then
          unpatchable
            "relative %s at 0x%x targets 0x%x outside its block [0x%x,0x%x) — image built with linker relaxation?"
            (match insn with Isa.Rcall _ -> "rcall" | _ -> "rjmp")
            old_addr target block_lo block_hi
    | Isa.Brbs (_, k) | Isa.Brbc (_, k) ->
        let target = old_addr + 2 + (k * 2) in
        if target < block_lo || target >= block_hi then
          unpatchable "branch at 0x%x leaves its block" old_addr
    | _ -> ());
    pos := !pos + size
  done

let apply (img : Image.t) (shuffle : Shuffle.t) =
  let code = img.code in
  let out = Bytes.of_string code in
  let syms = Array.of_list img.symbols in
  (* Stream each function block to its new location, patching absolute
     targets on the way. *)
  Array.iteri
    (fun i (sym : Image.symbol) ->
      let new_base = shuffle.Shuffle.new_addr.(i) in
      Bytes.blit_string code sym.addr out new_base sym.size;
      patch_range img shuffle ~code ~out ~old_base:sym.addr ~new_base ~len:sym.size
        ~block_lo:sym.addr ~block_hi:(sym.addr + sym.size))
    syms;
  (* The low executable region (interrupt vectors) stays in place but its
     absolute targets move. *)
  patch_range img shuffle ~code ~out ~old_base:0 ~new_base:0 ~len:img.exec_low_end ~block_lo:0
    ~block_hi:img.exec_low_end;
  (* Stored function pointers: 16-bit word addresses. *)
  List.iter
    (fun loc ->
      let w = Char.code code.[loc] lor (Char.code code.[loc + 1] lsl 8) in
      let target = w * 2 in
      if in_text img target then begin
        let target' = remap img shuffle target in
        let w' = target' / 2 in
        if w' > 0xFFFF then
          unpatchable "function pointer at 0x%x remaps to 0x%x, beyond icall's 16-bit reach" loc
            target';
        Bytes.set out loc (Char.chr (w' land 0xFF));
        Bytes.set out (loc + 1) (Char.chr (w' lsr 8))
      end)
    img.funptr_locs;
  let symbols =
    List.sort
      (fun (a : Image.symbol) b -> compare a.addr b.addr)
      (List.mapi
         (fun i (s : Image.symbol) -> { s with addr = shuffle.Shuffle.new_addr.(i) })
         img.symbols)
  in
  { img with code = Bytes.to_string out; symbols }

let check_randomizable img =
  match apply img (Shuffle.identity img) with
  | (_ : Image.t) -> Ok ()
  | exception Unpatchable m -> Error m
