(** Superblock hotness profiler.

    Ranks the dynamic superblock execution counters
    ({!Mavr_avr.Probes.block_stats} — one row per executed block, with
    per-prefix retirement already folded in) into a hot-block report
    annotated from the static side: containing function symbol (via the
    image's symbol table), static CFG attribution (is the hot entry a
    recovered block leader? descent-reachable at all?), and the leading
    disassembly.  This is the lens that says where the emulator's
    remaining telemetry overhead and the next superinstruction-fusion
    wins live — and, on the security side, whether hot execution is
    escaping the statically known CFG (a wild-PC smell).

    Symbol attribution assumes the counters were collected on the same
    image layout that is being annotated; profile undefended (MAVR's
    randomization reshuffles functions, invalidating the built image's
    symbol table). *)

type block = {
  addr : int;  (** block entry, byte address *)
  symbol : string option;  (** containing function, if any *)
  sym_offset : int;  (** [addr] minus the function's entry *)
  insns : int;  (** compiled block length *)
  execs : int;  (** block executions *)
  retired : int;  (** instructions retired in this block *)
  share_pct : float;  (** retired / total block-retired *)
  cum_pct : float;  (** running share in rank order *)
  cfg_leader : bool;  (** entry is a static CFG block leader *)
  reachable : bool;  (** entry is descent-reachable in the CFG *)
  head : string;  (** disassembly of the block's first instruction *)
}

type report = {
  total_retired : int;  (** block-retired + single-stepped *)
  block_retired : int;
  stepped : int;
  blocks_executed : int;  (** distinct executed block entries *)
  blocks : block list;  (** ranked by [retired] descending, top-N *)
}

(** [rank ?top ~image ~stepped stats] — ranked report, [top] rows
    (default 20).  Ties rank by ascending address, so the report is
    deterministic.  Runs CFG recovery on [image] for the static
    annotations. *)
val rank :
  ?top:int ->
  image:Mavr_obj.Image.t ->
  stepped:int ->
  Mavr_avr.Probes.block_stat list ->
  report

val to_json : report -> Mavr_telemetry.Json.t
val pp : Format.formatter -> report -> unit
