type t = {
  name : string;
  flash_bytes : int;
  sram_bytes : int;
  eeprom_bytes : int;
  pc_bytes : int;
  io_base : int;
  sram_base : int;
  flash_page_bytes : int;
  flash_endurance : int;
  unit_price_usd : float;
}

let atmega2560 =
  {
    name = "ATmega2560";
    flash_bytes = 256 * 1024;
    sram_bytes = 8 * 1024;
    eeprom_bytes = 4 * 1024;
    pc_bytes = 3;
    io_base = 0x20;
    sram_base = 0x200;
    flash_page_bytes = 256;
    flash_endurance = 10_000;
    unit_price_usd = 17.36;
  }

let atmega1284p =
  {
    name = "ATmega1284P";
    flash_bytes = 128 * 1024;
    sram_bytes = 16 * 1024;
    eeprom_bytes = 4 * 1024;
    pc_bytes = 2;
    io_base = 0x20;
    sram_base = 0x100;
    flash_page_bytes = 256;
    flash_endurance = 10_000;
    unit_price_usd = 7.74;
  }

let data_end d = d.sram_base + d.sram_bytes

module Io = struct
  let spl = 0x3D
  let sph = 0x3E
  let sreg = 0x3F
  let wdt_feed = 0x1B
  let udr = 0x0C
  let ucsra = 0x0B
  let gyro_lo = 0x10
  let gyro_hi = 0x11
  let accel_lo = 0x16
  let accel_hi = 0x17
  let eecr = 0x1F
  let eedr = 0x20
  let eearl = 0x21
  let eearh = 0x22
  let rampz = 0x3B
  let tccr = 0x13
  let ocr = 0x14
end

module Vector = struct
  let reset = 0
  let timer_compare = 1
  let count = 57
  let byte_addr n = 4 * n
end

module External_flash = struct
  type t = { store : Bytes.t; mutable used : int }

  let create ~bytes = { store = Bytes.make bytes '\xff'; used = 0 }
  let size t = Bytes.length t.store

  let program t data =
    if String.length data > Bytes.length t.store then
      invalid_arg "External_flash.program: image larger than chip";
    Bytes.fill t.store 0 (Bytes.length t.store) '\xff';
    Bytes.blit_string data 0 t.store 0 (String.length data);
    t.used <- String.length data

  let read t ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length t.store then
      invalid_arg "External_flash.read: out of range";
    Bytes.sub_string t.store pos len

  let read_byte t pos = Char.code (Bytes.get t.store pos)
  let content_length t = t.used
  let unit_price_usd = 3.94
end
