test/test_disasm_trace.ml: Alcotest Format List Mavr_avr Mavr_core String
