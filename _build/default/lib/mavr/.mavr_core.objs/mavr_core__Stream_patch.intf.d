lib/mavr/stream_patch.mli: Mavr_obj Mavr_prng
