module Crc = Mavr_mavlink.Crc
module Frame = Mavr_mavlink.Frame
module Messages = Mavr_mavlink.Messages
module Parser = Mavr_mavlink.Parser

let test_crc_vectors () =
  (* CRC-16/MCRF4XX check value: "123456789" -> 0x6F91. *)
  Alcotest.(check int) "check string" 0x6F91 (Crc.of_string "123456789");
  Alcotest.(check int) "empty is seed" 0xFFFF (Crc.of_string "");
  Alcotest.(check int) "single byte" (Crc.value (Crc.accumulate Crc.init 0x00))
    (Crc.of_string "\x00")

let test_crc_incremental () =
  let whole = Crc.of_string "MAVLINK" in
  let split = Crc.accumulate_string (Crc.accumulate_string Crc.init "MAV") "LINK" in
  Alcotest.(check int) "incremental equals whole" whole (Crc.value split)

let sample_frame =
  { Frame.seq = 42; sysid = 1; compid = 1; msgid = 0; payload = String.make 9 '\x07' }

let test_frame_roundtrip () =
  let wire = Frame.encode sample_frame in
  Alcotest.(check int) "wire length" (Frame.wire_length sample_frame) (String.length wire);
  Alcotest.(check int) "magic" 0xFE (Char.code wire.[0]);
  match Frame.decode wire with
  | Ok (f, consumed) ->
      Alcotest.(check int) "consumed all" (String.length wire) consumed;
      Alcotest.(check int) "seq" 42 f.seq;
      Alcotest.(check int) "msgid" 0 f.msgid;
      Alcotest.(check string) "payload" sample_frame.payload f.payload
  | Error e -> Alcotest.failf "decode failed: %s" (Format.asprintf "%a" Frame.pp_error e)

let test_frame_crc_includes_extra () =
  (* Same bytes, different CRC_EXTRA => decode must fail. *)
  let wire = Frame.encode ~crc_extra:50 sample_frame in
  match Frame.decode ~crc_extra_of:(fun _ -> 51) wire with
  | Error (Frame.Bad_crc _) -> ()
  | Ok _ -> Alcotest.fail "wrong CRC_EXTRA accepted"
  | Error e -> Alcotest.failf "unexpected error %s" (Format.asprintf "%a" Frame.pp_error e)

let test_frame_errors () =
  (match Frame.decode "\x55\x01\x02" with
  | Error Frame.Bad_magic -> ()
  | _ -> Alcotest.fail "expected bad magic");
  let wire = Frame.encode sample_frame in
  (match Frame.decode (String.sub wire 0 5) with
  | Error Frame.Truncated -> ()
  | _ -> Alcotest.fail "expected truncated");
  let corrupted = Bytes.of_string wire in
  Bytes.set corrupted 7 '\xFF';
  match Frame.decode (Bytes.to_string corrupted) with
  | Error (Frame.Bad_crc _) -> ()
  | _ -> Alcotest.fail "expected bad CRC"

let test_encode_raw_length_lie () =
  (* The malicious frame: declared length differs from the payload. *)
  let wire = Frame.encode_raw ~declared_len:200 { sample_frame with payload = "abc" } in
  Alcotest.(check int) "length field lies" 200 (Char.code wire.[1])

let test_parser_reassembles_chunks () =
  let wire = Frame.encode sample_frame in
  let p = Parser.create () in
  let all = ref [] in
  String.iter (fun c -> all := !all @ Parser.feed p (String.make 1 c)) wire;
  Alcotest.(check int) "one frame from byte-wise feed" 1 (List.length !all);
  Alcotest.(check int) "no pending bytes" 0 (Parser.pending p)

let test_parser_resync_after_garbage () =
  let wire = Frame.encode sample_frame in
  let p = Parser.create () in
  let frames = Parser.feed p ("GARBAGE!!" ^ wire ^ "\x01\x02" ^ wire) in
  Alcotest.(check int) "both frames recovered" 2 (List.length frames);
  let st = Parser.stats p in
  Alcotest.(check bool) "garbage counted" true (st.bytes_dropped >= 9)

let test_parser_crc_error_recovery () =
  let wire = Frame.encode sample_frame in
  let bad = Bytes.of_string wire in
  Bytes.set bad 7 '\xEE';
  let p = Parser.create () in
  let frames = Parser.feed p (Bytes.to_string bad ^ wire) in
  Alcotest.(check int) "good frame after bad" 1 (List.length frames);
  Alcotest.(check int) "crc error counted" 1 (Parser.stats p).crc_errors

let test_parser_bulk_totals () =
  (* 1000 back-to-back frames with interleaved garbage and corrupted
     CRCs: the stats must account for every byte exactly once.  Frames
     are built so no wire byte after the leading magic equals 0xFE —
     otherwise the resync after a corrupted frame would lock onto a
     payload byte and the expected totals become layout-dependent. *)
  let magic_free s =
    let clean = ref true in
    String.iteri (fun i c -> if i > 0 && Char.code c = Frame.magic then clean := false) s;
    !clean
  in
  let mk_wire k =
    let rec pick c =
      let f =
        (* seq stays below 0xFE: a 0xFE sequence byte would be a magic
           in the header that no payload choice can remove. *)
        { Frame.seq = k mod 200; sysid = 1; compid = 1; msgid = 30;
          payload = String.make 8 (Char.chr c) }
      in
      let w = Frame.encode f in
      if magic_free w then w else pick (c + 1)
    in
    pick (Char.code 'A')
  in
  let corrupt w =
    (* Flip the CRC low byte, avoiding an accidental 0xFE. *)
    let b = Bytes.of_string w in
    let i = Bytes.length b - 2 in
    let flip x = Char.chr (Char.code (Bytes.get b i) lxor x) in
    Bytes.set b i (if flip 0x5A = '\xFE' then flip 0x3C else flip 0x5A);
    Bytes.to_string b
  in
  let garbage = "GARBAGE" in
  let total = 1000 in
  let buf = Buffer.create 20_000 in
  let expect_ok = ref 0 and expect_crc = ref 0 and expect_drop = ref 0 in
  for k = 1 to total do
    let w = mk_wire k in
    if k mod 10 = 0 then begin
      (* The parser drops the bad frame's magic on the CRC error, then
         resyncs over the rest: the whole frame ends up dropped. *)
      Buffer.add_string buf (corrupt w);
      incr expect_crc;
      expect_drop := !expect_drop + String.length w
    end
    else begin
      Buffer.add_string buf w;
      incr expect_ok
    end;
    if k mod 7 = 0 then begin
      Buffer.add_string buf garbage;
      expect_drop := !expect_drop + String.length garbage
    end
  done;
  let stream = Buffer.contents buf in
  (* Feed in prime-sized chunks so frames split across feeds and the
     carry-over buffering path is exercised throughout. *)
  let p = Parser.create () in
  let frames = ref [] in
  let pos = ref 0 in
  while !pos < String.length stream do
    let n = min 997 (String.length stream - !pos) in
    frames := !frames @ Parser.feed p (String.sub stream !pos n);
    pos := !pos + n
  done;
  let st = Parser.stats p in
  Alcotest.(check int) "frames parsed" !expect_ok (List.length !frames);
  Alcotest.(check int) "frames_ok" !expect_ok st.Parser.frames_ok;
  Alcotest.(check int) "crc_errors" !expect_crc st.Parser.crc_errors;
  Alcotest.(check int) "bytes_dropped" !expect_drop st.Parser.bytes_dropped;
  (* Byte accounting: parsed + dropped + still-buffered = fed. *)
  let parsed_bytes = List.fold_left (fun a f -> a + Frame.wire_length f) 0 !frames in
  Alcotest.(check int) "every byte accounted once" (String.length stream)
    (parsed_bytes + st.Parser.bytes_dropped + Parser.pending p)

let test_parser_fuzz_under_channel () =
  (* The lossy-channel model is the adversary here: whatever it does to
     a valid stream — single-bit flips, drops, duplications, bursts —
     [Parser.feed] must never raise, and the exact byte-accounting
     invariant must survive (every corrupted byte lands in a parsed
     frame, the dropped tally, or the pending buffer). *)
  let module Channel = Mavr_fault.Channel in
  let intensities =
    [
      { Channel.clean with bit_flip_ppm = 2_000; drop_ppm = 1_000 };
      {
        Channel.bit_flip_ppm = 10_000;
        drop_ppm = 5_000;
        dup_ppm = 2_000;
        burst_ppm = 100_000;
        burst_len_max = 16;
        jitter_max_ticks = 0;
      };
      (* Absurd rates: the stream is mostly noise. *)
      {
        Channel.bit_flip_ppm = 200_000;
        drop_ppm = 100_000;
        dup_ppm = 100_000;
        burst_ppm = 500_000;
        burst_len_max = 32;
        jitter_max_ticks = 0;
      };
    ]
  in
  List.iteri
    (fun level params ->
      for seed = 0 to 19 do
        let rng = Mavr_prng.Splitmix.create ~seed:((level * 101) + seed) in
        let ch = Channel.create ~rng params in
        let buf = Buffer.create 4096 in
        for k = 0 to 60 do
          let payload, msgid =
            if k mod 3 = 0 then
              ( Messages.Heartbeat.encode
                  { typ = 1; autopilot = 3; base_mode = 0; custom_mode = 0; system_status = 4 },
                0 )
            else
              ( Messages.Raw_imu.encode
                  { time_usec = k; xacc = k; yacc = 0; zacc = 0; xgyro = k * 7; ygyro = 0;
                    zgyro = 0; xmag = 0; ymag = 0; zmag = 0 },
                27 )
          in
          let wire =
            Frame.encode { Frame.seq = k land 0xFF; sysid = 1; compid = 1; msgid; payload }
          in
          Buffer.add_string buf (Channel.corrupt ch wire)
        done;
        let stream = Buffer.contents buf in
        (* Feed in a cycling chunk size so split-frame carry-over is
           exercised at every intensity. *)
        let p = Parser.create () in
        let parsed_bytes = ref 0 in
        let pos = ref 0 and n = ref 1 in
        while !pos < String.length stream do
          let len = min !n (String.length stream - !pos) in
          List.iter
            (fun f -> parsed_bytes := !parsed_bytes + Frame.wire_length f)
            (Parser.feed p (String.sub stream !pos len));
          pos := !pos + len;
          n := (!n mod 37) + 1
        done;
        let st = Parser.stats p in
        Alcotest.(check int)
          (Printf.sprintf "byte accounting (intensity %d, seed %d)" level seed)
          (String.length stream)
          (!parsed_bytes + st.Parser.bytes_dropped + Parser.pending p)
      done)
    intensities

let test_messages_catalog () =
  List.iter
    (fun (d : Messages.def) ->
      match Messages.find d.msgid with
      | Some d' -> Alcotest.(check string) "find returns same def" d.name d'.name
      | None -> Alcotest.failf "%s not found by id" d.name)
    Messages.all;
  Alcotest.(check int) "unknown crc_extra is 0" 0 (Messages.crc_extra_of 200);
  Alcotest.(check int) "heartbeat extra" 50 (Messages.crc_extra_of 0);
  Alcotest.(check int) "raw_imu extra" 144 (Messages.crc_extra_of 27)

let test_heartbeat_codec () =
  let hb = { Messages.Heartbeat.typ = 1; autopilot = 3; base_mode = 81; custom_mode = 0xDEAD; system_status = 4 } in
  let s = Messages.Heartbeat.encode hb in
  Alcotest.(check int) "payload length" Messages.heartbeat.payload_len (String.length s);
  match Messages.Heartbeat.decode s with
  | Ok hb' -> Alcotest.(check bool) "roundtrip" true (hb = hb')
  | Error e -> Alcotest.fail e

let test_attitude_codec () =
  let att =
    { Messages.Attitude.time_boot_ms = 123456; roll = 0.12; pitch = -0.03; yaw = 1.57;
      rollspeed = 0.5; pitchspeed = -0.25; yawspeed = 0.0 }
  in
  match Messages.Attitude.decode (Messages.Attitude.encode att) with
  | Ok att' ->
      let close a b = Float.abs (a -. b) < 1e-6 in
      Alcotest.(check bool) "floats roundtrip" true
        (close att.roll att'.roll && close att.pitch att'.pitch && close att.yaw att'.yaw)
  | Error e -> Alcotest.fail e

let test_raw_imu_codec () =
  let imu =
    { Messages.Raw_imu.time_usec = 987654321; xacc = -100; yacc = 50; zacc = 981;
      xgyro = -32768; ygyro = 32767; zgyro = 0; xmag = 1; ymag = -1; zmag = 7 }
  in
  match Messages.Raw_imu.decode (Messages.Raw_imu.encode imu) with
  | Ok imu' -> Alcotest.(check bool) "i16 fields roundtrip" true (imu = imu')
  | Error e -> Alcotest.fail e

let test_statustext_codec () =
  let st = { Messages.Statustext.severity = 2; text = "ROP detected?" } in
  match Messages.Statustext.decode (Messages.Statustext.encode st) with
  | Ok st' -> Alcotest.(check string) "text" st.text st'.Messages.Statustext.text
  | Error e -> Alcotest.fail e

let test_param_set_codec () =
  let ps =
    { Messages.Param_set.target_system = 1; target_component = 1; param_id = "GYRO_SCALE";
      param_value = 1.25; param_type = 9 }
  in
  match Messages.Param_set.decode (Messages.Param_set.encode ps) with
  | Ok ps' ->
      Alcotest.(check string) "param id" ps.param_id ps'.param_id;
      Alcotest.(check bool) "value" true (Float.abs (ps.param_value -. ps'.param_value) < 1e-6)
  | Error e -> Alcotest.fail e

let test_command_long_codec () =
  let cl =
    { Messages.Command_long.target_system = 1; target_component = 250; command = 400;
      confirmation = 0; params = [| 1.0; 0.0; -3.5; 120.25; 0.0; 47.5; -122.25 |] }
  in
  match Messages.Command_long.decode (Messages.Command_long.encode cl) with
  | Ok cl' ->
      Alcotest.(check int) "command" cl.command cl'.command;
      Alcotest.(check int) "target" cl.target_component cl'.target_component;
      Array.iteri
        (fun i p ->
          if Float.abs (p -. cl'.params.(i)) > 1e-6 then
            Alcotest.failf "param %d: %f vs %f" i p cl'.params.(i))
        cl.params
  | Error e -> Alcotest.fail e

let test_command_long_arity () =
  match Messages.Command_long.encode
          { target_system = 1; target_component = 1; command = 0; confirmation = 0;
            params = [| 1.0 |] } with
  | _ -> Alcotest.fail "wrong arity accepted"
  | exception Invalid_argument _ -> ()

let test_gps_raw_int_codec () =
  let gps =
    { Messages.Gps_raw_int.time_usec = 1234567890; fix_type = 3;
      lat = 476205000; lon = -1223493000; alt = 120500; eph = 121; epv = 65535;
      vel = 1404; cog = 17500; satellites_visible = 11 }
  in
  match Messages.Gps_raw_int.decode (Messages.Gps_raw_int.encode gps) with
  | Ok gps' -> Alcotest.(check bool) "roundtrip incl. negative lon" true (gps = gps')
  | Error e -> Alcotest.fail e

let test_sys_status_codec () =
  let st =
    { Messages.Sys_status.onboard_control_sensors_present = 0x3FFFFFFF;
      onboard_control_sensors_enabled = 0x1FFFFFFF;
      onboard_control_sensors_health = 0x3FFFFFFF;
      load = 960 (* the paper's 96%% CPU usage *); voltage_battery = 12600;
      current_battery = -1; battery_remaining = 87; drop_rate_comm = 0;
      errors_comm = 0; errors_count = (1, 2, 3, 4) }
  in
  match Messages.Sys_status.decode (Messages.Sys_status.encode st) with
  | Ok st' -> Alcotest.(check bool) "roundtrip incl. i8/i16 fields" true (st = st')
  | Error e -> Alcotest.fail e

let test_bad_payload_lengths () =
  (match Messages.Heartbeat.decode "short" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short heartbeat accepted");
  match Messages.Raw_imu.decode (String.make 27 'x') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "long raw_imu accepted"

let gen_frame =
  QCheck.Gen.(
    map
      (fun (seq, sysid, compid, msgid, payload) -> { Frame.seq; sysid; compid; msgid; payload })
      (tup5 (int_range 0 255) (int_range 0 255) (int_range 0 255) (int_range 0 255)
         (string_size (int_range 0 255))))

let arb_frame =
  QCheck.make
    ~print:(fun f -> Printf.sprintf "{seq=%d;msgid=%d;|payload|=%d}" f.Frame.seq f.msgid (String.length f.payload))
    gen_frame

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame roundtrip" ~count:300 arb_frame (fun f ->
      match Frame.decode (Frame.encode f) with
      | Ok (f', n) -> f = f' && n = Frame.wire_length f
      | Error _ -> false)

let prop_parser_stream =
  QCheck.Test.make ~name:"parser recovers a random frame stream" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) arb_frame)
    (fun frames ->
      let stream = String.concat "" (List.map Frame.encode frames) in
      let p = Parser.create () in
      let out = Parser.feed p stream in
      List.length out = List.length frames
      && List.for_all2 (fun a b -> a = b) frames out)

let () =
  Alcotest.run "mavlink"
    [
      ( "crc",
        [
          Alcotest.test_case "check vectors" `Quick test_crc_vectors;
          Alcotest.test_case "incremental" `Quick test_crc_incremental;
        ] );
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "crc_extra matters" `Quick test_frame_crc_includes_extra;
          Alcotest.test_case "errors" `Quick test_frame_errors;
          Alcotest.test_case "encode_raw length lie" `Quick test_encode_raw_length_lie;
        ] );
      ( "parser",
        [
          Alcotest.test_case "byte-wise reassembly" `Quick test_parser_reassembles_chunks;
          Alcotest.test_case "resync after garbage" `Quick test_parser_resync_after_garbage;
          Alcotest.test_case "crc error recovery" `Quick test_parser_crc_error_recovery;
          Alcotest.test_case "bulk totals" `Quick test_parser_bulk_totals;
          Alcotest.test_case "fuzz under lossy channel" `Quick test_parser_fuzz_under_channel;
        ] );
      ( "messages",
        [
          Alcotest.test_case "catalog" `Quick test_messages_catalog;
          Alcotest.test_case "heartbeat codec" `Quick test_heartbeat_codec;
          Alcotest.test_case "attitude codec" `Quick test_attitude_codec;
          Alcotest.test_case "raw_imu codec" `Quick test_raw_imu_codec;
          Alcotest.test_case "statustext codec" `Quick test_statustext_codec;
          Alcotest.test_case "param_set codec" `Quick test_param_set_codec;
          Alcotest.test_case "command_long codec" `Quick test_command_long_codec;
          Alcotest.test_case "command_long arity" `Quick test_command_long_arity;
          Alcotest.test_case "gps_raw_int codec" `Quick test_gps_raw_int_codec;
          Alcotest.test_case "sys_status codec" `Quick test_sys_status_codec;
          Alcotest.test_case "bad payload lengths" `Quick test_bad_payload_lengths;
        ] );
      ("properties", List.map Helpers.qtest [ prop_frame_roundtrip; prop_parser_stream ]);
    ]
